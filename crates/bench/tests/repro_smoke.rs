//! Smoke tests for the `repro` binary: the full experiment suite must
//! run to completion at the CI scale, and the CLI must reject
//! malformed invocations.

use std::path::PathBuf;
use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

/// A unique scratch directory for tests that touch the filesystem.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("repro-smoke-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Writes a small deterministic edge list and returns its path.
fn write_edge_list(dir: &std::path::Path) -> PathBuf {
    let path = dir.join("tiny.el");
    let mut text = String::from("# tiny deterministic graph\n");
    for i in 0u32..900 {
        text.push_str(&format!("{} {}\n", i % 150, (i * 13 + 7) % 150));
    }
    std::fs::write(&path, text).expect("write edge list");
    path
}

#[test]
fn quick_all_exits_zero() {
    let out = repro()
        .args(["--quick", "all"])
        .output()
        .expect("spawn repro");
    assert!(
        out.status.success(),
        "repro --quick all failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    // Every experiment prints a report header; spot-check the span of
    // the suite from the first table to the last figure.
    for needle in ["Table I", "Fig. 6", "Fig. 11", "Table XII"] {
        assert!(stdout.contains(needle), "missing {needle} in output");
    }
}

#[test]
fn list_names_every_experiment() {
    let out = repro().arg("list").output().expect("spawn repro");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for name in ["table1", "fig6", "fig8", "fig11", "composed"] {
        assert!(stdout.contains(name), "missing experiment {name}");
    }
}

#[test]
fn unknown_experiment_is_an_error() {
    let out = repro()
        .arg("no_such_experiment")
        .output()
        .expect("spawn repro");
    assert!(!out.status.success());
}

#[test]
fn unknown_experiment_exits_2_and_lists_valid_names() {
    let out = repro()
        .arg("no_such_experiment")
        .output()
        .expect("spawn repro");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("no_such_experiment"), "{stderr}");
    for name in ["fig6", "table1", "dynamic"] {
        assert!(stderr.contains(name), "valid list missing {name}: {stderr}");
    }
}

#[test]
fn unknown_technique_exits_2_and_lists_valid_names() {
    let out = repro()
        .args(["--quick", "--techniques", "dbg,grail", "fig6"])
        .output()
        .expect("spawn repro");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("grail"), "{stderr}");
    for name in ["dbg", "sort", "rcb"] {
        assert!(stderr.contains(name), "valid list missing {name}: {stderr}");
    }
}

#[test]
fn unknown_app_exits_2_and_lists_valid_names() {
    let out = repro()
        .args(["--quick", "--apps", "walrus", "fig6"])
        .output()
        .expect("spawn repro");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("walrus"), "{stderr}");
    assert!(stderr.contains("sssp"), "{stderr}");
}

#[test]
fn malformed_spec_values_are_flag_errors_not_unknown_names() {
    // `dbg` is a valid name with a bad parameter value: that's a
    // malformed flag (exit 1), not an unknown name (exit 2).
    let out = repro()
        .args(["--quick", "--techniques", "dbg:groups=zero", "fig6"])
        .output()
        .expect("spawn repro");
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("groups=zero"), "{stderr}");
}

#[test]
fn technique_and_app_filters_shrink_the_report() {
    let out = repro()
        .args([
            "--quick",
            "--techniques",
            "dbg,sort",
            "--apps",
            "pr",
            "fig6",
        ])
        .output()
        .expect("spawn repro");
    assert!(
        out.status.success(),
        "filtered fig6 failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    // The paper-quote notes mention every technique, so assert on the
    // table header rows instead of the whole output.
    let header = stdout
        .lines()
        .find(|l| l.contains("app") && l.contains("dataset"))
        .expect("fig6 panel header");
    assert!(
        header.contains("DBG") && header.contains("Sort"),
        "{header}"
    );
    assert!(!header.contains("HubCluster"), "filter leaked: {header}");
    assert!(!stdout.contains("SSSP"), "app filter leaked: {stdout}");
}

#[test]
fn fully_filtered_experiment_reports_skip_not_panic() {
    // fig3's roster is the random probes; selecting only dbg leaves
    // nothing to run.
    let out = repro()
        .args(["--quick", "--techniques", "dbg", "fig3"])
        .output()
        .expect("spawn repro");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("skipped"), "{stdout}");
}

#[test]
fn parameterized_specs_run_end_to_end() {
    // rcb:3 is unreachable through the legacy enum's honest names —
    // naming it in --techniques must make the main evaluation run it
    // and label it correctly.
    let out = repro()
        .args([
            "--quick",
            "--techniques",
            "rv,rcb:3",
            "--apps",
            "pr",
            "fig6",
        ])
        .output()
        .expect("spawn repro");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("RCB-3"), "{stdout}");
    assert!(
        !stdout.contains("RCB-n"),
        "placeholder label leaked: {stdout}"
    );
}

#[test]
fn unknown_dataset_exits_2_and_lists_names_and_spec_forms() {
    let out = repro()
        .args(["--quick", "--datasets", "walrus", "fig6"])
        .output()
        .expect("spawn repro");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("walrus"), "{stderr}");
    for needle in ["kr", "sd", "file:", "lgr:"] {
        assert!(
            stderr.contains(needle),
            "valid list missing {needle}: {stderr}"
        );
    }
}

#[test]
fn malformed_dataset_values_exit_1() {
    // `kron` is a valid name (alias of kr) with a bad parameter
    // value: a malformed flag (exit 1), not an unknown name (exit 2).
    let out = repro()
        .args(["--quick", "--datasets", "kron:sd=abc", "fig6"])
        .output()
        .expect("spawn repro");
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("sd=abc"), "{stderr}");
}

#[test]
fn missing_dataset_file_exits_1_with_a_clean_error() {
    let out = repro()
        .args([
            "--quick",
            "--datasets",
            "file:/nonexistent/missing.el",
            "fig6",
        ])
        .output()
        .expect("spawn repro");
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("missing.el"), "{stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");
}

#[test]
fn list_flag_prints_every_name_and_grammar_in_one_place() {
    let out = repro().arg("--list").output().expect("spawn repro");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for needle in [
        "experiments:",
        "fig6",
        "techniques",
        "dbg[:groups=<n>]",
        "apps",
        "radii",
        "datasets",
        "file:<path>",
        "lgr:<path>",
        "dataset-cache",
    ] {
        assert!(
            stdout.contains(needle),
            "--list missing {needle}:\n{stdout}"
        );
    }
}

#[test]
fn dataset_filter_runs_selection_verbatim() {
    let out = repro()
        .args(["--quick", "--datasets", "lj,sd", "--apps", "pr", "fig6"])
        .output()
        .expect("spawn repro");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("selected datasets"), "{stdout}");
    assert!(stdout.contains("lj"), "{stdout}");
    // The unstructured/structured class panels collapse into one.
    assert!(!stdout.contains("Fig. 6a"), "{stdout}");
}

#[test]
fn file_dataset_runs_the_full_pipeline_from_the_cli() {
    let dir = scratch("file-pipeline");
    let el = write_edge_list(&dir);
    let out = repro()
        .args([
            "--quick",
            "--datasets",
            &format!("file:{}", el.display()),
            "fig6",
            "table1",
        ])
        .output()
        .expect("spawn repro");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    // The file's stem is the dataset label in every table.
    assert!(stdout.contains("tiny"), "{stdout}");
    assert!(stdout.contains("Fig. 6"), "{stdout}");
    assert!(stdout.contains("Table I"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn dataset_cache_reloads_byte_identically() {
    let dir = scratch("cache-reuse");
    let el = write_edge_list(&dir);
    let cache = dir.join("cache");
    let spec = format!("file:{}", el.display());
    let run = |extra_verbose: bool| {
        let mut cmd = repro();
        cmd.args([
            "--quick",
            "--dataset-cache",
            &cache.display().to_string(),
            "--datasets",
            &spec,
        ]);
        if extra_verbose {
            cmd.arg("--verbose");
        }
        cmd.args(["fig6", "fig8"]);
        cmd.output().expect("spawn repro")
    };
    // First run builds from text and populates the cache...
    let first = run(true);
    assert!(
        first.status.success(),
        "{}",
        String::from_utf8_lossy(&first.stderr)
    );
    let stderr1 = String::from_utf8_lossy(&first.stderr);
    assert!(stderr1.contains("building dataset"), "{stderr1}");
    let entries: Vec<_> = std::fs::read_dir(&cache)
        .expect("cache dir exists")
        .map(|e| e.unwrap().path())
        .collect();
    assert_eq!(entries.len(), 1, "one .lgr entry: {entries:?}");
    assert_eq!(entries[0].extension().unwrap(), "lgr");
    // ...second run reloads the binary CSR: no regeneration, and the
    // deterministic report is byte-identical.
    let second = run(true);
    assert!(second.status.success());
    let stderr2 = String::from_utf8_lossy(&second.stderr);
    assert!(stderr2.contains("from cache"), "{stderr2}");
    assert!(!stderr2.contains("building dataset"), "{stderr2}");
    assert_eq!(
        first.stdout, second.stdout,
        "cached rerun must be byte-identical"
    );
    // The persisted .lgr is itself a first-class dataset spec.
    let third = repro()
        .args([
            "--quick",
            "--datasets",
            &format!("lgr:{}", entries[0].display()),
            "fig6",
        ])
        .output()
        .expect("spawn repro");
    assert!(
        third.status.success(),
        "{}",
        String::from_utf8_lossy(&third.stderr)
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sim_knobs_parse_and_apply() {
    let out = repro()
        .args(["--quick", "--sim", "cores=2,sockets=1", "table2"])
        .output()
        .expect("spawn repro");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("2 cores / 1 sockets"), "{stdout}");
    let bad = repro()
        .args(["--quick", "--sim", "turbo=9", "table2"])
        .output()
        .expect("spawn repro");
    assert_eq!(bad.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&bad.stderr).contains("turbo=9"));
}

#[test]
fn sim_cores_beyond_the_directory_bound_exit_1_not_panic() {
    // Regression: `--sim cores=32` used to pass the parser and then
    // panic via the `MemorySim::new` assert mid-run. The 1..=16 bound
    // now lives in SimConfig validation, so it is an ordinary
    // malformed-flag error (exit 1) raised before any work starts.
    let out = repro()
        .args(["--quick", "--sim", "cores=32,sockets=2", "table2"])
        .output()
        .expect("spawn repro");
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cores=32"), "{stderr}");
    assert!(stderr.contains("1..=16"), "{stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");
}

#[test]
fn bad_scale_is_an_error() {
    let out = repro()
        .args(["--scale", "99", "fig6"])
        .output()
        .expect("spawn repro");
    assert!(!out.status.success());
}
