//! Smoke tests for the `repro` binary: the full experiment suite must
//! run to completion at the CI scale, and the CLI must reject
//! malformed invocations.

use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

#[test]
fn quick_all_exits_zero() {
    let out = repro()
        .args(["--quick", "all"])
        .output()
        .expect("spawn repro");
    assert!(
        out.status.success(),
        "repro --quick all failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    // Every experiment prints a report header; spot-check the span of
    // the suite from the first table to the last figure.
    for needle in ["Table I", "Fig. 6", "Fig. 11", "Table XII"] {
        assert!(stdout.contains(needle), "missing {needle} in output");
    }
}

#[test]
fn list_names_every_experiment() {
    let out = repro().arg("list").output().expect("spawn repro");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for name in ["table1", "fig6", "fig8", "fig11", "composed"] {
        assert!(stdout.contains(name), "missing experiment {name}");
    }
}

#[test]
fn unknown_experiment_is_an_error() {
    let out = repro()
        .arg("no_such_experiment")
        .output()
        .expect("spawn repro");
    assert!(!out.status.success());
}

#[test]
fn bad_scale_is_an_error() {
    let out = repro()
        .args(["--scale", "99", "fig6"])
        .output()
        .expect("spawn repro");
    assert!(!out.status.success());
}
