//! Smoke tests for the `repro` binary: the full experiment suite must
//! run to completion at the CI scale, and the CLI must reject
//! malformed invocations.

use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

#[test]
fn quick_all_exits_zero() {
    let out = repro()
        .args(["--quick", "all"])
        .output()
        .expect("spawn repro");
    assert!(
        out.status.success(),
        "repro --quick all failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    // Every experiment prints a report header; spot-check the span of
    // the suite from the first table to the last figure.
    for needle in ["Table I", "Fig. 6", "Fig. 11", "Table XII"] {
        assert!(stdout.contains(needle), "missing {needle} in output");
    }
}

#[test]
fn list_names_every_experiment() {
    let out = repro().arg("list").output().expect("spawn repro");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for name in ["table1", "fig6", "fig8", "fig11", "composed"] {
        assert!(stdout.contains(name), "missing experiment {name}");
    }
}

#[test]
fn unknown_experiment_is_an_error() {
    let out = repro()
        .arg("no_such_experiment")
        .output()
        .expect("spawn repro");
    assert!(!out.status.success());
}

#[test]
fn unknown_experiment_exits_2_and_lists_valid_names() {
    let out = repro()
        .arg("no_such_experiment")
        .output()
        .expect("spawn repro");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("no_such_experiment"), "{stderr}");
    for name in ["fig6", "table1", "dynamic"] {
        assert!(stderr.contains(name), "valid list missing {name}: {stderr}");
    }
}

#[test]
fn unknown_technique_exits_2_and_lists_valid_names() {
    let out = repro()
        .args(["--quick", "--techniques", "dbg,grail", "fig6"])
        .output()
        .expect("spawn repro");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("grail"), "{stderr}");
    for name in ["dbg", "sort", "rcb"] {
        assert!(stderr.contains(name), "valid list missing {name}: {stderr}");
    }
}

#[test]
fn unknown_app_exits_2_and_lists_valid_names() {
    let out = repro()
        .args(["--quick", "--apps", "walrus", "fig6"])
        .output()
        .expect("spawn repro");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("walrus"), "{stderr}");
    assert!(stderr.contains("sssp"), "{stderr}");
}

#[test]
fn malformed_spec_values_are_flag_errors_not_unknown_names() {
    // `dbg` is a valid name with a bad parameter value: that's a
    // malformed flag (exit 1), not an unknown name (exit 2).
    let out = repro()
        .args(["--quick", "--techniques", "dbg:groups=zero", "fig6"])
        .output()
        .expect("spawn repro");
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("groups=zero"), "{stderr}");
}

#[test]
fn technique_and_app_filters_shrink_the_report() {
    let out = repro()
        .args([
            "--quick",
            "--techniques",
            "dbg,sort",
            "--apps",
            "pr",
            "fig6",
        ])
        .output()
        .expect("spawn repro");
    assert!(
        out.status.success(),
        "filtered fig6 failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    // The paper-quote notes mention every technique, so assert on the
    // table header rows instead of the whole output.
    let header = stdout
        .lines()
        .find(|l| l.contains("app") && l.contains("dataset"))
        .expect("fig6 panel header");
    assert!(
        header.contains("DBG") && header.contains("Sort"),
        "{header}"
    );
    assert!(!header.contains("HubCluster"), "filter leaked: {header}");
    assert!(!stdout.contains("SSSP"), "app filter leaked: {stdout}");
}

#[test]
fn fully_filtered_experiment_reports_skip_not_panic() {
    // fig3's roster is the random probes; selecting only dbg leaves
    // nothing to run.
    let out = repro()
        .args(["--quick", "--techniques", "dbg", "fig3"])
        .output()
        .expect("spawn repro");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("skipped"), "{stdout}");
}

#[test]
fn parameterized_specs_run_end_to_end() {
    // rcb:3 is unreachable through the legacy enum's honest names —
    // naming it in --techniques must make the main evaluation run it
    // and label it correctly.
    let out = repro()
        .args([
            "--quick",
            "--techniques",
            "rv,rcb:3",
            "--apps",
            "pr",
            "fig6",
        ])
        .output()
        .expect("spawn repro");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("RCB-3"), "{stdout}");
    assert!(
        !stdout.contains("RCB-n"),
        "placeholder label leaked: {stdout}"
    );
}

#[test]
fn sim_knobs_parse_and_apply() {
    let out = repro()
        .args(["--quick", "--sim", "cores=2,sockets=1", "table2"])
        .output()
        .expect("spawn repro");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("2 cores / 1 sockets"), "{stdout}");
    let bad = repro()
        .args(["--quick", "--sim", "turbo=9", "table2"])
        .output()
        .expect("spawn repro");
    assert_eq!(bad.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&bad.stderr).contains("turbo=9"));
}

#[test]
fn bad_scale_is_an_error() {
    let out = repro()
        .args(["--scale", "99", "fig6"])
        .output()
        .expect("spawn repro");
    assert!(!out.status.success());
}
