//! Reproduction harness for *A Closer Look at Lightweight Graph
//! Reordering* (IISWC'19).
//!
//! The [`Harness`] caches datasets, permutations, and simulated runs;
//! each module under [`experiments`] regenerates one table or figure
//! of the paper and returns a formatted text report. The `repro`
//! binary drives them from the command line:
//!
//! ```text
//! repro all                 # every experiment at the default scale
//! repro fig6 table1         # a subset
//! repro --quick all         # tiny graphs, CI-friendly
//! repro --scale 16 fig8     # sd = 2^16 vertices
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod experiments;
pub mod harness;
pub mod table;

pub use harness::{Harness, HarnessConfig};
pub use table::TextTable;
