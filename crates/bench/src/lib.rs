//! Reproduction harness for *A Closer Look at Lightweight Graph
//! Reordering* (IISWC'19).
//!
//! The caching engine lives in [`lgr_engine::Session`]; each module
//! under [`experiments`] regenerates one table or figure of the paper
//! from a `&Session` and returns a formatted text report. The `repro`
//! binary drives them from the command line, with string-addressable
//! technique/app filters powered by
//! [`lgr_engine::TechniqueSpec`] /
//! [`lgr_engine::AppSpec`]:
//!
//! ```text
//! repro all                        # every experiment at the default scale
//! repro fig6 table1                # a subset
//! repro --quick all                # tiny graphs, CI-friendly
//! repro --scale 16 fig8            # sd = 2^16 vertices
//! repro --techniques dbg,sort all  # only these techniques
//! repro --apps pr,sssp fig6        # only these applications
//! ```
//!
//! The legacy [`Harness`] type remains as a deprecated adapter from
//! the old `TechniqueId`-keyed API onto `Session`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod experiments;
pub mod harness;
pub mod table;

pub use harness::{Harness, HarnessConfig};
pub use lgr_engine::{
    AppSpec, DatasetSpec, Job, Report, Session, SessionConfig, SpecError, TechniqueSpec,
};
pub use table::TextTable;
