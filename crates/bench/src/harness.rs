//! Legacy [`Harness`] compatibility layer over [`lgr_engine::Session`].
//!
//! The pool, the graph / permutation / reordered-CSR / root caches,
//! and the measurement methodology all live in [`lgr_engine::Session`]
//! now; `Harness` remains as a thin, deprecated adapter that keeps the
//! original `TechniqueId`-keyed API compiling. New code — including
//! every experiment module in this crate — should use [`Session`] and
//! [`lgr_engine::TechniqueSpec`] /
//! [`lgr_engine::AppSpec`] directly; see the facade crate's
//! migration notes for the old-call → spec mapping.

use std::sync::Arc;
use std::time::Duration;

use lgr_analytics::apps::AppId;
use lgr_core::{ReorderingTechnique, TechniqueId, TimedReorder};
use lgr_engine::{AppSpec, DatasetSpec, Job, Session, TechniqueSpec};
use lgr_graph::datasets::DatasetId;
use lgr_graph::{Csr, DegreeKind, VertexId};
use lgr_parallel::Pool;

/// Deprecated alias: session knobs under the harness's historical
/// name. Use [`lgr_engine::SessionConfig`] in new code.
pub type HarnessConfig = lgr_engine::SessionConfig;

/// Deprecated re-export: one traced run's outcome.
pub use lgr_engine::RunStats;

/// Deprecated adapter translating the closed [`TechniqueId`] enum API
/// onto the string-addressable [`Session`] engine. Every method
/// delegates; the only state is the wrapped session.
#[derive(Debug)]
pub struct Harness {
    session: Session,
}

impl Harness {
    /// A harness with the given configuration.
    pub fn new(cfg: HarnessConfig) -> Self {
        Harness {
            session: Session::new(cfg),
        }
    }

    /// The wrapped engine session (the API new code should target).
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// The worker pool shared by the harness's graph-construction and
    /// reordering work.
    pub fn pool(&self) -> &Pool {
        self.session.pool()
    }

    /// The active configuration.
    pub fn config(&self) -> &HarnessConfig {
        self.session.config()
    }

    /// The dataset's graph in its original ordering.
    pub fn graph(&self, ds: DatasetId) -> Arc<Csr> {
        self.session.graph(&DatasetSpec::from(ds))
    }

    /// Instantiates a technique by ID.
    pub fn technique(&self, id: TechniqueId) -> Box<dyn ReorderingTechnique> {
        self.session
            .technique(&TechniqueSpec::from(id))
            .expect("every TechniqueId maps to a built-in spec")
    }

    /// The (timed) permutation for `tech` on `ds` using `kind`
    /// degrees, cached.
    pub fn reorder(&self, ds: DatasetId, tech: TechniqueId, kind: DegreeKind) -> Arc<TimedReorder> {
        self.session
            .dataset_reorder(&DatasetSpec::from(ds), &TechniqueSpec::from(tech), kind)
    }

    /// The reordered CSR for `tech` on `ds` using `kind` degrees,
    /// cached.
    pub fn reordered_graph(&self, ds: DatasetId, tech: TechniqueId, kind: DegreeKind) -> Arc<Csr> {
        self.session
            .reordered_graph(&DatasetSpec::from(ds), &TechniqueSpec::from(tech), kind)
    }

    /// Deterministic roots on the ORIGINAL graph.
    pub fn roots(&self, ds: DatasetId, count: usize) -> Vec<VertexId> {
        self.session.roots(&DatasetSpec::from(ds), count)
    }

    /// Traced run of `app` on `ds` under `tech` (`None` = original
    /// ordering), cached.
    pub fn run(&self, app: AppId, ds: DatasetId, tech: Option<TechniqueId>) -> Arc<RunStats> {
        self.session.run(&job(app, ds, tech))
    }

    /// Untraced wall-clock run (same work as [`Harness::run`]), cached.
    pub fn wall(&self, app: AppId, ds: DatasetId, tech: Option<TechniqueId>) -> Duration {
        self.session.wall(&job(app, ds, tech))
    }

    /// Traced PageRank cycles on an arbitrary (already reordered)
    /// graph.
    pub fn simulate_pr(&self, graph: &Csr) -> u64 {
        self.session.simulate_pr(graph)
    }

    /// Speedup factor of `tech` over the original ordering for
    /// `app` x `ds`, excluding reordering time (Fig. 6's metric).
    pub fn speedup(&self, app: AppId, ds: DatasetId, tech: TechniqueId) -> f64 {
        self.session.speedup(
            &AppSpec::new(app),
            &DatasetSpec::from(ds),
            &TechniqueSpec::from(tech),
        )
    }

    /// Converts a wall-clock duration into simulated cycles using the
    /// dataset's PageRank calibration.
    pub fn wall_to_cycles(&self, ds: DatasetId, wall: Duration) -> u64 {
        self.session.wall_to_cycles(&DatasetSpec::from(ds), wall)
    }

    /// Net speedup including reordering time, amortized over
    /// `traversals` repetitions of the app run (Figs. 10–11).
    pub fn net_speedup(
        &self,
        app: AppId,
        ds: DatasetId,
        tech: TechniqueId,
        traversals: u64,
    ) -> f64 {
        self.session.net_speedup(
            &AppSpec::new(app),
            &DatasetSpec::from(ds),
            &TechniqueSpec::from(tech),
            traversals,
        )
    }
}

fn job(app: AppId, ds: DatasetId, tech: Option<TechniqueId>) -> Job {
    let mut j = Job::new(AppSpec::new(app), ds);
    if let Some(t) = tech {
        j = j.with_technique(TechniqueSpec::from(t));
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;
    use lgr_graph::datasets::DatasetScale;

    fn tiny() -> Harness {
        let mut cfg = HarnessConfig::quick();
        cfg.scale = DatasetScale::with_sd_vertices(1 << 10);
        Harness::new(cfg)
    }

    #[test]
    fn graph_is_cached() {
        let h = tiny();
        let a = h.graph(DatasetId::Lj);
        let b = h.graph(DatasetId::Lj);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn reorder_is_cached_and_canonicalized() {
        let h = tiny();
        let a = h.reorder(DatasetId::Lj, TechniqueId::RandomVertex, DegreeKind::In);
        let b = h.reorder(DatasetId::Lj, TechniqueId::RandomVertex, DegreeKind::Out);
        assert!(Arc::ptr_eq(&a, &b), "RV ignores degree kind");
        let c = h.reorder(DatasetId::Lj, TechniqueId::Dbg, DegreeKind::In);
        let d = h.reorder(DatasetId::Lj, TechniqueId::Dbg, DegreeKind::Out);
        assert!(!Arc::ptr_eq(&c, &d), "DBG is degree-kind sensitive");
    }

    #[test]
    fn id_and_spec_paths_share_one_cache() {
        let h = tiny();
        // The deprecated enum path and the spec path must resolve to
        // the same cached entries — the adapter adds no second world.
        let a = h.reorder(DatasetId::Lj, TechniqueId::Dbg, DegreeKind::Out);
        let b = h.session().dataset_reorder(
            &DatasetSpec::from(DatasetId::Lj),
            &"dbg".parse().unwrap(),
            DegreeKind::Out,
        );
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn traced_run_produces_stats() {
        let h = tiny();
        let r = h.run(AppId::Pr, DatasetId::Lj, None);
        assert!(r.stats.instructions > 0);
        assert!(r.stats.l1.accesses > 0);
        assert!(r.cycles() > 0);
    }

    #[test]
    fn speedup_is_computable_for_all_apps() {
        let h = tiny();
        for app in AppId::ALL {
            let s = h.speedup(app, DatasetId::Lj, TechniqueId::Dbg);
            assert!(s > 0.1 && s < 10.0, "{}: speedup {s}", app.name());
        }
    }

    #[test]
    fn net_speedup_increases_with_traversals() {
        let h = tiny();
        let one = h.net_speedup(AppId::Sssp, DatasetId::Lj, TechniqueId::Dbg, 1);
        let many = h.net_speedup(AppId::Sssp, DatasetId::Lj, TechniqueId::Dbg, 64);
        assert!(many >= one, "amortization should help: {one} vs {many}");
    }

    #[test]
    fn roots_are_deterministic_and_valid() {
        let h = tiny();
        let r1 = h.roots(DatasetId::Sd, 4);
        let r2 = h.roots(DatasetId::Sd, 4);
        assert_eq!(r1, r2);
        assert_eq!(r1.len(), 4);
        let g = h.graph(DatasetId::Sd);
        for &r in &r1 {
            assert!(g.out_degree(r) > 0);
        }
    }

    #[test]
    fn roots_never_duplicate_when_count_exceeds_pool() {
        let h = tiny();
        // Ask for far more roots than any 2^10-vertex dataset has
        // candidates: the result must be capped and duplicate-free.
        let roots = h.roots(DatasetId::Lj, 10_000_000);
        let mut unique = roots.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), roots.len(), "duplicate roots returned");
        assert!(roots.len() <= h.graph(DatasetId::Lj).num_vertices());
    }

    #[test]
    fn reordered_graph_is_cached_across_runs() {
        let h = tiny();
        let a = h.reordered_graph(DatasetId::Lj, TechniqueId::Dbg, DegreeKind::Out);
        let b = h.reordered_graph(DatasetId::Lj, TechniqueId::Dbg, DegreeKind::Out);
        assert!(Arc::ptr_eq(&a, &b), "same key must reuse the CSR");
        // Degree-kind canonicalization applies to the graph cache too.
        let c = h.reordered_graph(DatasetId::Lj, TechniqueId::RandomVertex, DegreeKind::In);
        let d = h.reordered_graph(DatasetId::Lj, TechniqueId::RandomVertex, DegreeKind::Out);
        assert!(Arc::ptr_eq(&c, &d), "RV ignores degree kind");
        // And the cached graph matches a fresh sequential apply.
        let timed = h.reorder(DatasetId::Lj, TechniqueId::Dbg, DegreeKind::Out);
        let fresh = h.graph(DatasetId::Lj).apply_permutation(&timed.permutation);
        assert_eq!(*a, fresh);
    }
}
