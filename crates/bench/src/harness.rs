//! Shared machinery: dataset/permutation/run caching and the paper's
//! measurement methodology.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::time::{Duration, Instant};

use lgr_analytics::apps::bc::{bc_with_arrays, BcArrays};
use lgr_analytics::apps::pagerank::{pagerank_with_arrays, PrArrays};
use lgr_analytics::apps::pagerank_delta::{pagerank_delta_with_arrays, PrdArrays};
use lgr_analytics::apps::radii::{radii_with_arrays, RadiiArrays};
use lgr_analytics::apps::sssp::{sssp_with_arrays, SsspArrays};
use lgr_analytics::apps::{AppId, BcConfig, PrConfig, PrdConfig, RadiiConfig, SsspConfig};
use lgr_cachesim::{MemoryLayout, MemorySim, NullTracer, SimConfig, SimStats};
use lgr_core::{
    Dbg, Gorder, HubCluster, HubClusterOriginal, HubSort, HubSortOriginal, Identity,
    RandomCacheBlock, RandomVertex, ReorderingTechnique, Sort, TechniqueId, TimedReorder,
};
use lgr_graph::datasets::{self, DatasetId, DatasetScale};
use lgr_graph::{Csr, DegreeKind, VertexId};
use lgr_parallel::Pool;

/// Harness-wide knobs.
#[derive(Debug, Clone, Copy)]
pub struct HarnessConfig {
    /// Dataset scale (vertex count of `sd`; others keep Table IX
    /// ratios).
    pub scale: DatasetScale,
    /// Simulated machine.
    pub sim: SimConfig,
    /// Roots aggregated per root-dependent app run (the paper uses 8).
    pub roots: usize,
    /// Fixed PageRank iterations per traced run.
    pub pr_iters: usize,
    /// PageRank-Delta iteration cap.
    pub prd_iters: usize,
    /// Radii round cap.
    pub radii_rounds: usize,
    /// Print progress lines to stderr.
    pub verbose: bool,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig {
            scale: DatasetScale::with_sd_vertices(1 << 17),
            sim: SimConfig::default(),
            roots: 2,
            pr_iters: 3,
            prd_iters: 5,
            radii_rounds: 1024,
            verbose: false,
        }
    }
}

impl HarnessConfig {
    /// A tiny configuration for smoke tests and CI. The scale is
    /// chosen so `repro --quick all` finishes in well under a minute
    /// even in debug builds (the full suite simulates every app on
    /// every dataset).
    pub fn quick() -> Self {
        HarnessConfig {
            scale: DatasetScale::with_sd_vertices(1 << 11),
            roots: 1,
            pr_iters: 2,
            prd_iters: 3,
            radii_rounds: 256,
            ..Default::default()
        }
    }

    /// Overrides the scale exponent: `sd` gets `2^exp` vertices.
    pub fn with_scale_exp(mut self, exp: u32) -> Self {
        self.scale = DatasetScale::with_sd_vertices(1usize << exp);
        self
    }
}

/// One traced run's outcome.
#[derive(Debug, Clone, Copy)]
pub struct RunStats {
    /// Simulator statistics (MPKI, breakdowns, cycles).
    pub stats: SimStats,
}

impl RunStats {
    /// Estimated execution cycles.
    pub fn cycles(&self) -> u64 {
        self.stats.cycles
    }
}

type ReorderKey = (DatasetId, TechniqueId, DegreeKind);
type RunKey = (AppId, DatasetId, Option<TechniqueId>);

/// Caching driver shared by every experiment.
pub struct Harness {
    cfg: HarnessConfig,
    /// Worker pool shared by every CSR build, permutation apply, and
    /// framework reordering the harness performs. Sized by the
    /// `LGR_THREADS` knob (default: available parallelism).
    pool: Pool,
    graphs: RefCell<HashMap<DatasetId, Rc<Csr>>>,
    reorders: RefCell<HashMap<ReorderKey, Rc<TimedReorder>>>,
    /// Reordered CSRs, cached under the same canonicalized key as the
    /// permutations that produced them — rebuilding the graph per
    /// `run`/`wall` call was the single biggest repeated cost of the
    /// repro pipeline.
    reordered: RefCell<HashMap<ReorderKey, Rc<Csr>>>,
    /// Per-dataset root candidates (vertices with both edge
    /// directions), so the O(V) scan runs once per dataset rather than
    /// once per prepared run.
    root_candidates: RefCell<HashMap<DatasetId, Rc<Vec<VertexId>>>>,
    runs: RefCell<HashMap<RunKey, Rc<RunStats>>>,
    walls: RefCell<HashMap<RunKey, Duration>>,
}

impl std::fmt::Debug for Harness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Harness").field("cfg", &self.cfg).finish()
    }
}

impl Harness {
    /// A harness with the given configuration.
    pub fn new(cfg: HarnessConfig) -> Self {
        Harness {
            cfg,
            pool: Pool::with_default_threads(),
            graphs: RefCell::new(HashMap::new()),
            reorders: RefCell::new(HashMap::new()),
            reordered: RefCell::new(HashMap::new()),
            root_candidates: RefCell::new(HashMap::new()),
            runs: RefCell::new(HashMap::new()),
            walls: RefCell::new(HashMap::new()),
        }
    }

    /// The worker pool shared by the harness's graph-construction and
    /// reordering work.
    pub fn pool(&self) -> &Pool {
        &self.pool
    }

    /// The active configuration.
    pub fn config(&self) -> &HarnessConfig {
        &self.cfg
    }

    fn log(&self, msg: &str) {
        if self.cfg.verbose {
            eprintln!("[repro] {msg}");
        }
    }

    /// The dataset's graph in its original ordering. Weights are
    /// always attached (SSSP uses them; other apps ignore them).
    pub fn graph(&self, ds: DatasetId) -> Rc<Csr> {
        if let Some(g) = self.graphs.borrow().get(&ds) {
            return Rc::clone(g);
        }
        self.log(&format!("building dataset {}", ds.name()));
        let mut el = datasets::build(ds, self.cfg.scale);
        el.randomize_weights(64, 0xC0FFEE ^ ds as u64);
        let g = Rc::new(Csr::from_edge_list_with(&el, &self.pool));
        self.graphs.borrow_mut().insert(ds, Rc::clone(&g));
        g
    }

    /// Instantiates a technique by ID.
    pub fn technique(&self, id: TechniqueId) -> Box<dyn ReorderingTechnique> {
        match id {
            TechniqueId::Original => Box::new(Identity),
            TechniqueId::Sort => Box::new(Sort::new()),
            TechniqueId::HubSort => Box::new(HubSort::new()),
            TechniqueId::HubCluster => Box::new(HubCluster::new()),
            TechniqueId::Dbg => Box::new(Dbg::default()),
            TechniqueId::Gorder => Box::new(Gorder::new()),
            TechniqueId::GorderDbg => Box::new(lgr_core::gorder_dbg()),
            TechniqueId::HubSortO => Box::new(HubSortOriginal::new()),
            TechniqueId::HubClusterO => Box::new(HubClusterOriginal::new()),
            TechniqueId::RandomVertex => Box::new(RandomVertex::new(0xDECAF)),
            TechniqueId::RandomCacheBlock(n) => {
                Box::new(RandomCacheBlock::new(n as usize, 0xDECAF))
            }
        }
    }

    /// Degree-kind canonicalization: techniques that ignore the degree
    /// kind share one cached permutation.
    fn canonical_kind(id: TechniqueId, kind: DegreeKind) -> DegreeKind {
        match id {
            TechniqueId::Gorder
            | TechniqueId::HubSortO
            | TechniqueId::HubClusterO
            | TechniqueId::RandomVertex
            | TechniqueId::RandomCacheBlock(_)
            | TechniqueId::Original => DegreeKind::Out,
            _ => kind,
        }
    }

    /// The (timed) permutation for `tech` on `ds` using `kind`
    /// degrees, cached.
    pub fn reorder(&self, ds: DatasetId, tech: TechniqueId, kind: DegreeKind) -> Rc<TimedReorder> {
        let key = (ds, tech, Self::canonical_kind(tech, kind));
        if let Some(r) = self.reorders.borrow().get(&key) {
            return Rc::clone(r);
        }
        let graph = self.graph(ds);
        self.log(&format!("reordering {} with {}", ds.name(), tech.name()));
        let t = self.technique(tech);
        let timed = Rc::new(TimedReorder::run_with(
            t.as_ref(),
            &graph,
            key.2,
            &self.pool,
        ));
        self.reorders.borrow_mut().insert(key, Rc::clone(&timed));
        timed
    }

    /// The reordered CSR for `tech` on `ds` using `kind` degrees,
    /// cached under the same canonicalized key as the permutation so
    /// every `run`/`wall` call on the same (dataset, technique) pair
    /// reuses one relabeled graph.
    pub fn reordered_graph(&self, ds: DatasetId, tech: TechniqueId, kind: DegreeKind) -> Rc<Csr> {
        let key = (ds, tech, Self::canonical_kind(tech, kind));
        if let Some(g) = self.reordered.borrow().get(&key) {
            return Rc::clone(g);
        }
        let base = self.graph(ds);
        let timed = self.reorder(ds, tech, kind);
        self.log(&format!("rebuilding {} under {}", ds.name(), tech.name()));
        let g = Rc::new(base.apply_permutation_with(&timed.permutation, &self.pool));
        self.reordered.borrow_mut().insert(key, Rc::clone(&g));
        g
    }

    /// The dataset's root candidates (vertices with both in- and
    /// out-edges), cached.
    fn root_candidates(&self, ds: DatasetId) -> Rc<Vec<VertexId>> {
        if let Some(c) = self.root_candidates.borrow().get(&ds) {
            return Rc::clone(c);
        }
        let g = self.graph(ds);
        let candidates: Rc<Vec<VertexId>> = Rc::new(
            (0..g.num_vertices() as VertexId)
                .filter(|&v| g.out_degree(v) > 0 && g.in_degree(v) > 0)
                .collect(),
        );
        self.root_candidates
            .borrow_mut()
            .insert(ds, Rc::clone(&candidates));
        candidates
    }

    /// Deterministic roots on the ORIGINAL graph: vertices with both
    /// in- and out-edges, evenly spaced through the ID range. Returns
    /// at most one root per candidate — when `count` exceeds the
    /// candidate pool the result is the whole pool, never duplicated
    /// roots (a duplicate would double-charge its traversal in the
    /// aggregated simulation).
    pub fn roots(&self, ds: DatasetId, count: usize) -> Vec<VertexId> {
        let candidates = self.root_candidates(ds);
        if candidates.is_empty() {
            return vec![0];
        }
        let k = count.max(1).min(candidates.len());
        (0..k)
            .map(|i| {
                let idx = (i * candidates.len() / k + candidates.len() / (2 * k))
                    .min(candidates.len() - 1);
                candidates[idx]
            })
            .collect()
    }

    /// Traced run of `app` on `ds` under `tech` (`None` = original
    /// ordering), cached. Root-dependent apps aggregate
    /// `cfg.roots` traversals into one simulation, mirroring the
    /// paper's methodology.
    pub fn run(&self, app: AppId, ds: DatasetId, tech: Option<TechniqueId>) -> Rc<RunStats> {
        let key = (app, ds, tech);
        if let Some(r) = self.runs.borrow().get(&key) {
            return Rc::clone(r);
        }
        self.log(&format!(
            "tracing {} on {} / {}",
            app.name(),
            ds.name(),
            tech.map_or("Original", TechniqueId::name)
        ));
        let base = self.graph(ds);
        let (graph, roots) = self.prepared(app, ds, tech, &base);
        let stats = self.run_traced(app, &graph, &roots);
        let r = Rc::new(RunStats { stats });
        self.runs.borrow_mut().insert(key, Rc::clone(&r));
        r
    }

    /// Untraced wall-clock run (same work as [`Harness::run`]), cached.
    pub fn wall(&self, app: AppId, ds: DatasetId, tech: Option<TechniqueId>) -> Duration {
        let key = (app, ds, tech);
        if let Some(d) = self.walls.borrow().get(&key) {
            return *d;
        }
        let base = self.graph(ds);
        let (graph, roots) = self.prepared(app, ds, tech, &base);
        let start = Instant::now();
        self.run_untraced(app, &graph, &roots);
        let elapsed = start.elapsed();
        self.walls.borrow_mut().insert(key, elapsed);
        elapsed
    }

    /// Builds the (possibly reordered) graph and maps roots through the
    /// permutation.
    fn prepared(
        &self,
        app: AppId,
        ds: DatasetId,
        tech: Option<TechniqueId>,
        base: &Rc<Csr>,
    ) -> (Rc<Csr>, Vec<VertexId>) {
        // Radii needs its 64 BFS sources fixed in *logical* vertex
        // terms so every ordering computes the same problem.
        let count = if app == AppId::Radii {
            64
        } else {
            self.cfg.roots
        };
        let roots = self.roots(ds, count);
        match tech {
            None => (Rc::clone(base), roots),
            Some(t) => {
                let kind = app.reorder_degree();
                let timed = self.reorder(ds, t, kind);
                let g = self.reordered_graph(ds, t, kind);
                let mapped = roots.iter().map(|&r| timed.permutation.new_id(r)).collect();
                (g, mapped)
            }
        }
    }

    fn pr_config(&self) -> PrConfig {
        PrConfig {
            max_iters: self.cfg.pr_iters,
            tolerance: 0.0,
            cores: self.cfg.sim.cores,
            ..Default::default()
        }
    }

    fn prd_config(&self) -> PrdConfig {
        PrdConfig {
            max_iters: self.cfg.prd_iters,
            cores: self.cfg.sim.cores,
            ..Default::default()
        }
    }

    fn radii_config(&self, sources: &[VertexId]) -> RadiiConfig {
        RadiiConfig {
            max_rounds: self.cfg.radii_rounds,
            cores: self.cfg.sim.cores,
            ..Default::default()
        }
        .with_sources(sources.to_vec())
    }

    /// Runs `app` on the simulator, registering its arrays first.
    fn run_traced(&self, app: AppId, graph: &Csr, roots: &[VertexId]) -> SimStats {
        let cores = self.cfg.sim.cores;
        let mut layout = MemoryLayout::new();
        match app {
            AppId::Pr => {
                let arrays = PrArrays::register(&mut layout, graph);
                let mut sim = MemorySim::new(self.cfg.sim, layout);
                pagerank_with_arrays(graph, &self.pr_config(), &arrays, &mut sim);
                *sim.stats()
            }
            AppId::Prd => {
                let arrays = PrdArrays::register(&mut layout, graph);
                let mut sim = MemorySim::new(self.cfg.sim, layout);
                pagerank_delta_with_arrays(graph, &self.prd_config(), &arrays, &mut sim);
                *sim.stats()
            }
            AppId::Sssp => {
                let arrays = SsspArrays::register(&mut layout, graph);
                let mut sim = MemorySim::new(self.cfg.sim, layout);
                for &r in roots {
                    let cfg = SsspConfig {
                        cores,
                        ..SsspConfig::from_root(r)
                    };
                    sssp_with_arrays(graph, &cfg, &arrays, &mut sim);
                }
                *sim.stats()
            }
            AppId::Bc => {
                let arrays = BcArrays::register(&mut layout, graph);
                let mut sim = MemorySim::new(self.cfg.sim, layout);
                for &r in roots {
                    let cfg = BcConfig { root: r, cores };
                    bc_with_arrays(graph, &cfg, &arrays, &mut sim);
                }
                *sim.stats()
            }
            AppId::Radii => {
                let arrays = RadiiArrays::register(&mut layout, graph);
                let mut sim = MemorySim::new(self.cfg.sim, layout);
                radii_with_arrays(graph, &self.radii_config(roots), &arrays, &mut sim);
                *sim.stats()
            }
        }
    }

    /// Runs `app` with the null tracer (host-speed execution).
    fn run_untraced(&self, app: AppId, graph: &Csr, roots: &[VertexId]) {
        let cores = self.cfg.sim.cores;
        let mut t = NullTracer;
        match app {
            AppId::Pr => {
                lgr_analytics::apps::pagerank(graph, &self.pr_config(), &mut t);
            }
            AppId::Prd => {
                lgr_analytics::apps::pagerank_delta(graph, &self.prd_config(), &mut t);
            }
            AppId::Sssp => {
                for &r in roots {
                    let cfg = SsspConfig {
                        cores,
                        ..SsspConfig::from_root(r)
                    };
                    lgr_analytics::apps::sssp(graph, &cfg, &mut t);
                }
            }
            AppId::Bc => {
                for &r in roots {
                    let cfg = BcConfig { root: r, cores };
                    lgr_analytics::apps::bc(graph, &cfg, &mut t);
                }
            }
            AppId::Radii => {
                lgr_analytics::apps::radii(graph, &self.radii_config(roots), &mut t);
            }
        }
    }

    /// Traced PageRank cycles on an arbitrary (already reordered)
    /// graph — used by ablations that sweep technique parameters
    /// outside the [`TechniqueId`] registry.
    pub fn simulate_pr(&self, graph: &Csr) -> u64 {
        self.run_traced(AppId::Pr, graph, &[]).cycles
    }

    /// Speedup factor of `tech` over the original ordering for
    /// `app` x `ds`, excluding reordering time (Fig. 6's metric).
    pub fn speedup(&self, app: AppId, ds: DatasetId, tech: TechniqueId) -> f64 {
        let base = self.run(app, ds, None).cycles() as f64;
        let with = self.run(app, ds, Some(tech)).cycles() as f64;
        base / with.max(1.0)
    }

    /// Converts a wall-clock duration into simulated cycles using the
    /// dataset's PageRank calibration: the same PR work is both
    /// simulated (cycles) and executed on the host (seconds); their
    /// ratio is the exchange rate. This lets measured reordering times
    /// be charged against simulated application cycles (Figs. 10–11,
    /// Table XII).
    pub fn wall_to_cycles(&self, ds: DatasetId, wall: Duration) -> u64 {
        let sim_cycles = self.run(AppId::Pr, ds, None).cycles() as f64;
        let host_secs = self.wall(AppId::Pr, ds, None).as_secs_f64().max(1e-9);
        let rate = sim_cycles / host_secs;
        (wall.as_secs_f64() * rate) as u64
    }

    /// Net speedup including reordering time, amortized over
    /// `traversals` repetitions of the app run (Figs. 10–11):
    /// `base * T / (reorder + with * T)`.
    pub fn net_speedup(
        &self,
        app: AppId,
        ds: DatasetId,
        tech: TechniqueId,
        traversals: u64,
    ) -> f64 {
        let base = self.run(app, ds, None).cycles() as f64;
        let with = self.run(app, ds, Some(tech)).cycles() as f64;
        let reorder = self.reorder(ds, tech, app.reorder_degree());
        let reorder_cycles = self.wall_to_cycles(ds, reorder.elapsed) as f64;
        (base * traversals as f64) / (reorder_cycles + with * traversals as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Harness {
        let mut cfg = HarnessConfig::quick();
        cfg.scale = DatasetScale::with_sd_vertices(1 << 10);
        Harness::new(cfg)
    }

    #[test]
    fn graph_is_cached() {
        let h = tiny();
        let a = h.graph(DatasetId::Lj);
        let b = h.graph(DatasetId::Lj);
        assert!(Rc::ptr_eq(&a, &b));
    }

    #[test]
    fn reorder_is_cached_and_canonicalized() {
        let h = tiny();
        let a = h.reorder(DatasetId::Lj, TechniqueId::RandomVertex, DegreeKind::In);
        let b = h.reorder(DatasetId::Lj, TechniqueId::RandomVertex, DegreeKind::Out);
        assert!(Rc::ptr_eq(&a, &b), "RV ignores degree kind");
        let c = h.reorder(DatasetId::Lj, TechniqueId::Dbg, DegreeKind::In);
        let d = h.reorder(DatasetId::Lj, TechniqueId::Dbg, DegreeKind::Out);
        assert!(!Rc::ptr_eq(&c, &d), "DBG is degree-kind sensitive");
    }

    #[test]
    fn traced_run_produces_stats() {
        let h = tiny();
        let r = h.run(AppId::Pr, DatasetId::Lj, None);
        assert!(r.stats.instructions > 0);
        assert!(r.stats.l1.accesses > 0);
        assert!(r.cycles() > 0);
    }

    #[test]
    fn speedup_is_computable_for_all_apps() {
        let h = tiny();
        for app in AppId::ALL {
            let s = h.speedup(app, DatasetId::Lj, TechniqueId::Dbg);
            assert!(s > 0.1 && s < 10.0, "{}: speedup {s}", app.name());
        }
    }

    #[test]
    fn net_speedup_increases_with_traversals() {
        let h = tiny();
        let one = h.net_speedup(AppId::Sssp, DatasetId::Lj, TechniqueId::Dbg, 1);
        let many = h.net_speedup(AppId::Sssp, DatasetId::Lj, TechniqueId::Dbg, 64);
        assert!(many >= one, "amortization should help: {one} vs {many}");
    }

    #[test]
    fn roots_are_deterministic_and_valid() {
        let h = tiny();
        let r1 = h.roots(DatasetId::Sd, 4);
        let r2 = h.roots(DatasetId::Sd, 4);
        assert_eq!(r1, r2);
        assert_eq!(r1.len(), 4);
        let g = h.graph(DatasetId::Sd);
        for &r in &r1 {
            assert!(g.out_degree(r) > 0);
        }
    }

    #[test]
    fn roots_never_duplicate_when_count_exceeds_pool() {
        let h = tiny();
        // Ask for far more roots than any 2^10-vertex dataset has
        // candidates: the result must be capped and duplicate-free.
        let roots = h.roots(DatasetId::Lj, 10_000_000);
        let mut unique = roots.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), roots.len(), "duplicate roots returned");
        assert!(roots.len() <= h.graph(DatasetId::Lj).num_vertices());
    }

    #[test]
    fn reordered_graph_is_cached_across_runs() {
        let h = tiny();
        let a = h.reordered_graph(DatasetId::Lj, TechniqueId::Dbg, DegreeKind::Out);
        let b = h.reordered_graph(DatasetId::Lj, TechniqueId::Dbg, DegreeKind::Out);
        assert!(Rc::ptr_eq(&a, &b), "same key must reuse the CSR");
        // Degree-kind canonicalization applies to the graph cache too.
        let c = h.reordered_graph(DatasetId::Lj, TechniqueId::RandomVertex, DegreeKind::In);
        let d = h.reordered_graph(DatasetId::Lj, TechniqueId::RandomVertex, DegreeKind::Out);
        assert!(Rc::ptr_eq(&c, &d), "RV ignores degree kind");
        // And the cached graph matches a fresh sequential apply.
        let timed = h.reorder(DatasetId::Lj, TechniqueId::Dbg, DegreeKind::Out);
        let fresh = h.graph(DatasetId::Lj).apply_permutation(&timed.permutation);
        assert_eq!(*a, fresh);
    }
}
