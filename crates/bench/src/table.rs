//! Aligned text-table formatting for experiment reports.

use std::fmt;

/// A simple column-aligned text table with a title and optional notes.
///
/// # Example
///
/// ```
/// use lgr_bench::TextTable;
///
/// let mut t = TextTable::new("Demo", vec!["dataset", "speedup"]);
/// t.row(vec!["sd".into(), "16.8%".into()]);
/// let s = t.to_string();
/// assert!(s.contains("dataset"));
/// assert!(s.contains("16.8%"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl TextTable {
    /// A table with the given title and column headers.
    pub fn new(title: &str, header: Vec<&str>) -> Self {
        TextTable {
            title: title.to_owned(),
            header: header.into_iter().map(str::to_owned).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Appends a free-text note rendered under the table.
    pub fn note(&mut self, text: &str) {
        self.notes.push(text.to_owned());
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }
}

/// Formats a float as a percentage with one decimal, e.g. `16.8`.
pub fn pct(x: f64) -> String {
    format!("{:.1}", x * 100.0)
}

/// Formats a speedup-over-baseline as signed percent, e.g. `+16.8%`.
pub fn speedup_pct(baseline: f64, value: f64) -> String {
    if value <= 0.0 || baseline <= 0.0 {
        return "n/a".to_owned();
    }
    let s = (baseline / value - 1.0) * 100.0;
    format!("{s:+.1}")
}

/// Geometric mean of speedup factors (`baseline / value` ratios).
pub fn geomean(ratios: &[f64]) -> f64 {
    if ratios.is_empty() {
        return 1.0;
    }
    let log_sum: f64 = ratios.iter().map(|r| r.max(1e-12).ln()).sum();
    (log_sum / ratios.len() as f64).exp()
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        writeln!(f, "=== {} ===", self.title)?;
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for i in 0..cols {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{:>width$}", cells[i], width = widths[i])?;
            }
            writeln!(f)
        };
        write_row(f, &self.header)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        for note in &self.notes {
            writeln!(f, "  note: {note}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new("T", vec!["a", "bbbb"]);
        t.row(vec!["xxx".into(), "1".into()]);
        t.note("hello");
        let s = t.to_string();
        assert!(s.contains("=== T ==="));
        assert!(s.contains("note: hello"));
        assert!(s.lines().count() >= 4);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = TextTable::new("T", vec!["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn speedup_formatting() {
        assert_eq!(speedup_pct(120.0, 100.0), "+20.0");
        assert_eq!(speedup_pct(100.0, 125.0), "-20.0");
        assert_eq!(speedup_pct(1.0, 0.0), "n/a");
    }

    #[test]
    fn geomean_of_ratios() {
        assert!((geomean(&[2.0, 0.5]) - 1.0).abs() < 1e-12);
        assert!((geomean(&[4.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 1.0);
    }
}
