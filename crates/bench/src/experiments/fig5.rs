//! Fig. 5: original implementations of HubSort/HubCluster vs the
//! paper's grouping-framework reimplementations.

use lgr_analytics::apps::AppId;
use lgr_core::TechniqueId;
use lgr_graph::datasets::DatasetId;

use crate::table::geomean;
use crate::{Harness, TextTable};

/// Regenerates Fig. 5 (per-dataset geometric mean of per-app
/// speedups, like the paper's bars).
pub fn run(h: &Harness) -> String {
    let techniques = [
        TechniqueId::HubSortO,
        TechniqueId::HubSort,
        TechniqueId::HubClusterO,
        TechniqueId::HubCluster,
    ];
    let mut header = vec!["dataset"];
    header.extend(techniques.iter().map(|t| t.name()));
    header.push("best");
    let mut t = TextTable::new(
        "Fig. 5: speedup (%) over no reordering, original vs framework implementations",
        header,
    );
    let mut per_tech: Vec<Vec<f64>> = vec![Vec::new(); techniques.len()];
    for ds in DatasetId::SKEWED {
        let mut row = vec![ds.name().to_owned()];
        let mut best = f64::MIN;
        let mut best_name = "";
        for (i, &tech) in techniques.iter().enumerate() {
            let ratios: Vec<f64> = AppId::ALL
                .iter()
                .map(|&app| h.speedup(app, ds, tech))
                .collect();
            let gm = geomean(&ratios);
            per_tech[i].push(gm);
            let pct = (gm - 1.0) * 100.0;
            row.push(format!("{pct:+.1}"));
            if pct > best {
                best = pct;
                best_name = tech.name();
            }
        }
        row.push(best_name.to_owned());
        t.row(row);
    }
    let mut gm_row = vec!["GMean".to_owned()];
    for ratios in &per_tech {
        gm_row.push(format!("{:+.1}", (geomean(ratios) - 1.0) * 100.0));
    }
    gm_row.push(String::new());
    t.row(gm_row);
    t.note("paper: framework implementations match or beat the originals, motivating their use in the main evaluation");
    t.to_string()
}
