//! Fig. 5: original implementations of HubSort/HubCluster vs the
//! paper's grouping-framework reimplementations.

use lgr_engine::{Session, TechniqueSpec};

use crate::table::geomean;
use crate::TextTable;

/// Regenerates Fig. 5 (per-dataset geometric mean of per-app
/// speedups, like the paper's bars).
pub fn run(h: &Session) -> String {
    let techniques = h.selected_techniques(&[
        TechniqueSpec::hubsort_o(),
        TechniqueSpec::hubsort(),
        TechniqueSpec::hubcluster_o(),
        TechniqueSpec::hubcluster(),
    ]);
    let apps = h.eval_apps();
    let datasets = h.main_datasets();
    if techniques.is_empty() || apps.is_empty() || datasets.is_empty() {
        return super::skipped("Fig. 5");
    }
    let labels: Vec<String> = techniques.iter().map(TechniqueSpec::label).collect();
    let mut header = vec!["dataset"];
    header.extend(labels.iter().map(String::as_str));
    header.push("best");
    let mut t = TextTable::new(
        "Fig. 5: speedup (%) over no reordering, original vs framework implementations",
        header,
    );
    let mut per_tech: Vec<Vec<f64>> = vec![Vec::new(); techniques.len()];
    for ds in &datasets {
        let mut row = vec![ds.label()];
        let mut best = f64::MIN;
        let mut best_name = String::new();
        for (i, tech) in techniques.iter().enumerate() {
            let ratios: Vec<f64> = apps.iter().map(|app| h.speedup(app, ds, tech)).collect();
            let gm = geomean(&ratios);
            per_tech[i].push(gm);
            let pct = (gm - 1.0) * 100.0;
            row.push(format!("{pct:+.1}"));
            if pct > best {
                best = pct;
                best_name = tech.label();
            }
        }
        row.push(best_name);
        t.row(row);
    }
    let mut gm_row = vec!["GMean".to_owned()];
    for ratios in &per_tech {
        gm_row.push(format!("{:+.1}", (geomean(ratios) - 1.0) * 100.0));
    }
    gm_row.push(String::new());
    t.row(gm_row);
    t.note("paper: framework implementations match or beat the originals, motivating their use in the main evaluation");
    t.to_string()
}
