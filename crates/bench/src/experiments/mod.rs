//! One module per reproduced table/figure. Each exposes
//! `run(&Harness) -> String` returning a formatted report.

pub mod ablation;
pub mod composed;
pub mod dynamic;
pub mod fig10;
pub mod fig11;
pub mod fig3;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod table1;
pub mod table11;
pub mod table12;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;

use lgr_engine::Session;

/// An experiment the `repro` binary can run.
#[derive(Debug, Clone, Copy)]
pub struct Experiment {
    /// CLI name (`table1`, `fig6`, ...).
    pub name: &'static str,
    /// What the paper's artifact shows.
    pub description: &'static str,
    /// Entry point.
    pub run: fn(&Session) -> String,
}

/// Placeholder report for an experiment whose entire roster was
/// excluded by the `--techniques` / `--apps` selection.
pub(crate) fn skipped(title: &str) -> String {
    format!("{title}: skipped (nothing selected by --techniques/--apps)\n")
}

/// Every reproduced experiment, in paper order.
pub const ALL: &[Experiment] = &[
    Experiment {
        name: "table1",
        description: "Hot-vertex fraction and edge coverage per dataset",
        run: table1::run,
    },
    Experiment {
        name: "table2",
        description: "Average hot vertices per cache block (original ordering)",
        run: table2::run,
    },
    Experiment {
        name: "table3",
        description: "Cache capacity needed for all hot vertices",
        run: table3::run,
    },
    Experiment {
        name: "table4",
        description: "Degree distribution of hot vertices (sd)",
        run: table4::run,
    },
    Experiment {
        name: "table5",
        description: "Skew-aware techniques as grouping-framework instances",
        run: table5::run,
    },
    Experiment {
        name: "fig3",
        description: "Radii slowdown under random reordering (RV, RCB-1/2/4)",
        run: fig3::run,
    },
    Experiment {
        name: "fig5",
        description: "Original vs framework implementations of HubSort/HubCluster",
        run: fig5::run,
    },
    Experiment {
        name: "table11",
        description: "Reordering time normalized to Sort",
        run: table11::run,
    },
    Experiment {
        name: "fig6",
        description: "Application speedup excluding reordering time (main result)",
        run: fig6::run,
    },
    Experiment {
        name: "fig7",
        description: "Reordering on no-skew datasets (uni, road)",
        run: fig7::run,
    },
    Experiment {
        name: "fig8",
        description: "L1/L2/L3 MPKI for PageRank",
        run: fig8::run,
    },
    Experiment {
        name: "fig9",
        description: "L2 miss breakdown for push-dominated apps (SSSP, PRD)",
        run: fig9::run,
    },
    Experiment {
        name: "fig10",
        description: "Net speedup including reordering time",
        run: fig10::run,
    },
    Experiment {
        name: "fig11",
        description: "SSSP net speedup vs number of traversals",
        run: fig11::run,
    },
    Experiment {
        name: "table12",
        description: "PR iterations needed to amortize reordering",
        run: table12::run,
    },
    Experiment {
        name: "composed",
        description: "Gorder+DBG layering (paper Sec. VII)",
        run: composed::run,
    },
    Experiment {
        name: "ablation",
        description: "DBG group-count sensitivity sweep",
        run: ablation::run,
    },
    Experiment {
        name: "dynamic",
        description: "Evolving-graph amortization (paper Sec. VIII-B)",
        run: dynamic::run,
    },
];

/// Looks an experiment up by CLI name.
pub fn by_name(name: &str) -> Option<&'static Experiment> {
    ALL.iter().find(|e| e.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_by_name() {
        assert!(by_name("fig6").is_some());
        assert!(by_name("table1").is_some());
        assert!(by_name("nope").is_none());
        assert_eq!(ALL.len(), 18);
    }
}
