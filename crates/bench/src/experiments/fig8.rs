//! Fig. 8: L1/L2/L3 MPKI for PageRank across datasets and orderings.

use lgr_analytics::apps::AppId;
use lgr_core::TechniqueId;
use lgr_graph::datasets::DatasetId;

use crate::{Harness, TextTable};

const ORDERINGS: [Option<TechniqueId>; 6] = [
    None,
    Some(TechniqueId::Sort),
    Some(TechniqueId::HubSort),
    Some(TechniqueId::HubCluster),
    Some(TechniqueId::Dbg),
    Some(TechniqueId::Gorder),
];

/// Regenerates Fig. 8 (three panels: L1, L2, L3 MPKI).
pub fn run(h: &Harness) -> String {
    let mut out = String::new();
    for (level, title) in [
        (0usize, "Fig. 8a: L1 MPKI for PR"),
        (1, "Fig. 8b: L2 MPKI for PR"),
        (2, "Fig. 8c: L3 MPKI for PR"),
    ] {
        let mut header = vec!["dataset"];
        header.extend(
            ORDERINGS
                .iter()
                .map(|o| o.map_or("Original", TechniqueId::name)),
        );
        let mut t = TextTable::new(title, header);
        for ds in DatasetId::SKEWED {
            let mut row = vec![ds.name().to_owned()];
            for &ord in &ORDERINGS {
                let stats = h.run(AppId::Pr, ds, ord).stats;
                row.push(format!("{:.1}", stats.mpki()[level]));
            }
            t.row(row);
        }
        match level {
            0 => t.note("paper: fine-grain techniques (Sort/HubSort) RAISE L1 MPKI on structured datasets (lj/wl/fr/mp)"),
            1 => t.note("paper: L2 MPKI tracks L1 (almost everything missing L1 misses L2 too)"),
            _ => t.note("paper: ALL skew-aware techniques cut L3 MPKI; small datasets (lj/wl) have little headroom"),
        }
        out.push_str(&t.to_string());
        out.push('\n');
    }
    out
}
