//! Fig. 8: L1/L2/L3 MPKI for PageRank across datasets and orderings.

use lgr_analytics::apps::AppId;
use lgr_engine::{AppSpec, Job, Session, TechniqueSpec};

use crate::TextTable;

/// Regenerates Fig. 8 (three panels: L1, L2, L3 MPKI).
pub fn run(h: &Session) -> String {
    let techs = h.main_eval();
    let mut apps = h.selected_apps(&[AppSpec::new(AppId::Pr)]);
    let datasets = h.main_datasets();
    if techs.is_empty() || apps.is_empty() || datasets.is_empty() {
        return super::skipped("Fig. 8");
    }
    // Use the selected spec so `--apps pr:iters=...` knobs apply.
    let pr = apps.remove(0);
    // The untouched ordering is always the leading column; drop an
    // explicit `orig` from the roster so it isn't shown (and its
    // identity permutation not applied) twice.
    let orderings: Vec<Option<TechniqueSpec>> = std::iter::once(None)
        .chain(
            techs
                .into_iter()
                .filter(|t| *t != TechniqueSpec::original())
                .map(Some),
        )
        .collect();
    let labels: Vec<String> = orderings
        .iter()
        .map(|o| {
            o.as_ref()
                .map_or_else(|| "Original".to_owned(), TechniqueSpec::label)
        })
        .collect();
    let mut out = String::new();
    for (level, title) in [
        (0usize, "Fig. 8a: L1 MPKI for PR"),
        (1, "Fig. 8b: L2 MPKI for PR"),
        (2, "Fig. 8c: L3 MPKI for PR"),
    ] {
        let mut header = vec!["dataset"];
        header.extend(labels.iter().map(String::as_str));
        let mut t = TextTable::new(title, header);
        for ds in &datasets {
            let mut row = vec![ds.label()];
            for ord in &orderings {
                let mut job = Job::new(pr.clone(), ds.clone());
                if let Some(spec) = ord {
                    job = job.with_technique(spec.clone());
                }
                let stats = h.run(&job).stats;
                row.push(format!("{:.1}", stats.mpki()[level]));
            }
            t.row(row);
        }
        match level {
            0 => t.note("paper: fine-grain techniques (Sort/HubSort) RAISE L1 MPKI on structured datasets (lj/wl/fr/mp)"),
            1 => t.note("paper: L2 MPKI tracks L1 (almost everything missing L1 misses L2 too)"),
            _ => t.note("paper: ALL skew-aware techniques cut L3 MPKI; small datasets (lj/wl) have little headroom"),
        }
        out.push_str(&t.to_string());
        out.push('\n');
    }
    out
}
