//! Table XII: minimum PageRank iterations needed to amortize each
//! technique's reordering time.

use lgr_analytics::apps::AppId;
use lgr_core::TechniqueId;
use lgr_graph::datasets::DatasetId;

use crate::experiments::fig10::DATASETS;
use crate::{Harness, TextTable};

/// Regenerates Table XII.
pub fn run(h: &Harness) -> String {
    let mut header = vec!["dataset"];
    header.extend(TechniqueId::MAIN_EVAL.iter().map(|t| t.name()));
    let mut t = TextTable::new(
        "Table XII: minimum PR iterations to amortize reordering time",
        header,
    );
    let per_iter = |ds: DatasetId, tech: Option<TechniqueId>| -> f64 {
        h.run(AppId::Pr, ds, tech).cycles() as f64 / h.config().pr_iters.max(1) as f64
    };
    for ds in DATASETS {
        let base = per_iter(ds, None);
        let mut row = vec![ds.name().to_owned()];
        for tech in TechniqueId::MAIN_EVAL {
            let with = per_iter(ds, Some(tech));
            let saving = base - with;
            let reorder = h.reorder(ds, tech, AppId::Pr.reorder_degree());
            let reorder_cycles = h.wall_to_cycles(ds, reorder.elapsed) as f64;
            row.push(if saving <= 0.0 {
                "never".to_owned()
            } else {
                format!("{:.1}", reorder_cycles / saving)
            });
        }
        t.row(row);
    }
    t.note("paper: DBG amortizes in 1.9-4.4 iterations, fastest of all techniques; Gorder needs 112-1359");
    t.to_string()
}
