//! Table XII: minimum PageRank iterations needed to amortize each
//! technique's reordering time.

use lgr_analytics::apps::AppId;
use lgr_engine::{AppSpec, DatasetSpec, Job, Session, TechniqueSpec};

use crate::TextTable;

/// Regenerates Table XII.
pub fn run(h: &Session) -> String {
    let techs = h.main_eval();
    let mut apps = h.selected_apps(&[AppSpec::new(AppId::Pr)]);
    let datasets = h.selected_datasets(&super::fig10::datasets());
    if techs.is_empty() || apps.is_empty() || datasets.is_empty() {
        return super::skipped("Table XII");
    }
    // Use the selected spec so `--apps pr:iters=...` knobs apply.
    let pr = apps.remove(0);
    let labels: Vec<String> = techs.iter().map(TechniqueSpec::label).collect();
    let mut header = vec!["dataset"];
    header.extend(labels.iter().map(String::as_str));
    let mut t = TextTable::new(
        "Table XII: minimum PR iterations to amortize reordering time",
        header,
    );
    let per_iter = |ds: &DatasetSpec, tech: Option<&TechniqueSpec>| -> f64 {
        let mut job = Job::new(pr.clone(), ds.clone());
        if let Some(spec) = tech {
            job = job.with_technique(spec.clone());
        }
        let iters = pr.iters().unwrap_or(h.config().pr_iters);
        h.run(&job).cycles() as f64 / iters.max(1) as f64
    };
    for ds in &datasets {
        let base = per_iter(ds, None);
        let mut row = vec![ds.label()];
        for tech in &techs {
            let with = per_iter(ds, Some(tech));
            let saving = base - with;
            let reorder = h.dataset_reorder(ds, tech, AppId::Pr.reorder_degree());
            let reorder_cycles = h.wall_to_cycles(ds, reorder.elapsed) as f64;
            row.push(if saving <= 0.0 {
                "never".to_owned()
            } else {
                format!("{:.1}", reorder_cycles / saving)
            });
        }
        t.row(row);
    }
    t.note("paper: DBG amortizes in 1.9-4.4 iterations, fastest of all techniques; Gorder needs 112-1359");
    t.to_string()
}
