//! Fig. 7: reordering on no-skew datasets (uni, road).

use lgr_engine::{DatasetSpec, Session, TechniqueSpec};

use crate::table::geomean;
use crate::TextTable;

/// Regenerates Fig. 7.
pub fn run(h: &Session) -> String {
    let techs = h.main_eval();
    let apps = h.eval_apps();
    let datasets = h.selected_datasets(&DatasetSpec::no_skew());
    if techs.is_empty() || apps.is_empty() || datasets.is_empty() {
        return super::skipped("Fig. 7");
    }
    let labels: Vec<String> = techs.iter().map(TechniqueSpec::label).collect();
    let mut header = vec!["dataset", "app"];
    header.extend(labels.iter().map(String::as_str));
    let mut t = TextTable::new(
        "Fig. 7: speedup (%) on no-skew datasets (skew-aware techniques should be ~neutral)",
        header,
    );
    for ds in &datasets {
        for app in &apps {
            let mut row = vec![ds.label(), app.label().to_owned()];
            for tech in &techs {
                let s = h.speedup(app, ds, tech);
                row.push(format!("{:+.1}", (s - 1.0) * 100.0));
            }
            t.row(row);
        }
        let mut gm = vec![ds.label(), "GMean".to_owned()];
        for tech in &techs {
            let ratios: Vec<f64> = apps.iter().map(|app| h.speedup(app, ds, tech)).collect();
            gm.push(format!("{:+.1}", (geomean(&ratios) - 1.0) * 100.0));
        }
        t.row(gm);
    }
    t.note("paper: skew-aware techniques within ~1.2% of baseline; Gorder ~+3.5% (exploits fine-grain locality)");
    t.to_string()
}
