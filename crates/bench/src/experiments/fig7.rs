//! Fig. 7: reordering on no-skew datasets (uni, road).

use lgr_analytics::apps::AppId;
use lgr_core::TechniqueId;
use lgr_graph::datasets::DatasetId;

use crate::table::geomean;
use crate::{Harness, TextTable};

/// Regenerates Fig. 7.
pub fn run(h: &Harness) -> String {
    let mut header = vec!["dataset", "app"];
    header.extend(TechniqueId::MAIN_EVAL.iter().map(|t| t.name()));
    let mut t = TextTable::new(
        "Fig. 7: speedup (%) on no-skew datasets (skew-aware techniques should be ~neutral)",
        header,
    );
    for ds in DatasetId::NO_SKEW {
        for app in AppId::ALL {
            let mut row = vec![ds.name().to_owned(), app.name().to_owned()];
            for tech in TechniqueId::MAIN_EVAL {
                let s = h.speedup(app, ds, tech);
                row.push(format!("{:+.1}", (s - 1.0) * 100.0));
            }
            t.row(row);
        }
        let mut gm = vec![ds.name().to_owned(), "GMean".to_owned()];
        for tech in TechniqueId::MAIN_EVAL {
            let ratios: Vec<f64> = AppId::ALL
                .iter()
                .map(|&app| h.speedup(app, ds, tech))
                .collect();
            gm.push(format!("{:+.1}", (geomean(&ratios) - 1.0) * 100.0));
        }
        t.row(gm);
    }
    t.note("paper: skew-aware techniques within ~1.2% of baseline; Gorder ~+3.5% (exploits fine-grain locality)");
    t.to_string()
}
