//! Fig. 10: net speedup after accounting for reordering time
//! (single run of each application).

use lgr_analytics::apps::AppId;
use lgr_core::TechniqueId;
use lgr_graph::datasets::DatasetId;

use crate::table::geomean;
use crate::{Harness, TextTable};

/// The four datasets of the paper's Fig. 10: the two largest
/// unstructured and two largest structured.
pub const DATASETS: [DatasetId; 4] = [DatasetId::Tw, DatasetId::Sd, DatasetId::Fr, DatasetId::Mp];

/// Regenerates Fig. 10.
pub fn run(h: &Harness) -> String {
    let mut header = vec!["app", "dataset"];
    header.extend(TechniqueId::MAIN_EVAL.iter().map(|t| t.name()));
    let mut t = TextTable::new(
        "Fig. 10: net speedup (%) including reordering time (1 run)",
        header,
    );
    for app in AppId::ALL {
        for ds in DATASETS {
            let mut row = vec![app.name().to_owned(), ds.name().to_owned()];
            for tech in TechniqueId::MAIN_EVAL {
                let s = h.net_speedup(app, ds, tech, 1);
                row.push(format!("{:+.1}", (s - 1.0) * 100.0));
            }
            t.row(row);
        }
    }
    let mut gm = vec!["GMean".to_owned(), String::new()];
    for tech in TechniqueId::MAIN_EVAL {
        let ratios: Vec<f64> = AppId::ALL
            .iter()
            .flat_map(|&app| {
                DATASETS
                    .iter()
                    .map(move |&ds| h.net_speedup(app, ds, tech, 1))
            })
            .collect();
        gm.push(format!("{:+.1}", (geomean(&ratios) - 1.0) * 100.0));
    }
    t.row(gm);
    t.note("paper: Gorder's reordering cost causes severe net slowdowns (up to -96.5%); DBG is the only technique with a positive average net speedup (+6.2%)");
    t.to_string()
}
