//! Fig. 10: net speedup after accounting for reordering time
//! (single run of each application).

use lgr_engine::{DatasetSpec, Session, TechniqueSpec};
use lgr_graph::datasets::DatasetId;

use crate::table::geomean;
use crate::TextTable;

/// The four datasets of the paper's Fig. 10: the two largest
/// unstructured and two largest structured.
pub fn datasets() -> Vec<DatasetSpec> {
    [DatasetId::Tw, DatasetId::Sd, DatasetId::Fr, DatasetId::Mp]
        .into_iter()
        .map(DatasetSpec::from)
        .collect()
}

/// Regenerates Fig. 10.
pub fn run(h: &Session) -> String {
    let techs = h.main_eval();
    let apps = h.eval_apps();
    let datasets = h.selected_datasets(&datasets());
    if techs.is_empty() || apps.is_empty() || datasets.is_empty() {
        return super::skipped("Fig. 10");
    }
    let labels: Vec<String> = techs.iter().map(TechniqueSpec::label).collect();
    let mut header = vec!["app", "dataset"];
    header.extend(labels.iter().map(String::as_str));
    let mut t = TextTable::new(
        "Fig. 10: net speedup (%) including reordering time (1 run)",
        header,
    );
    for app in &apps {
        for ds in &datasets {
            let mut row = vec![app.label().to_owned(), ds.label()];
            for tech in &techs {
                let s = h.net_speedup(app, ds, tech, 1);
                row.push(format!("{:+.1}", (s - 1.0) * 100.0));
            }
            t.row(row);
        }
    }
    let mut gm = vec!["GMean".to_owned(), String::new()];
    for tech in &techs {
        let ratios: Vec<f64> = apps
            .iter()
            .flat_map(|app| {
                datasets
                    .iter()
                    .map(move |ds| h.net_speedup(app, ds, tech, 1))
            })
            .collect();
        gm.push(format!("{:+.1}", (geomean(&ratios) - 1.0) * 100.0));
    }
    t.row(gm);
    t.note("paper: Gorder's reordering cost causes severe net slowdowns (up to -96.5%); DBG is the only technique with a positive average net speedup (+6.2%)");
    t.to_string()
}
