//! Table II: average hot vertices per cache block in the original
//! ordering.

use lgr_graph::stats::hot_vertices_per_block;

use lgr_engine::Session;

use crate::TextTable;

/// Regenerates Table II.
pub fn run(h: &Session) -> String {
    let datasets = h.main_datasets();
    if datasets.is_empty() {
        return super::skipped("Table II");
    }
    let labels: Vec<String> = datasets.iter().map(|d| d.label()).collect();
    let mut header = vec!["metric"];
    header.extend(labels.iter().map(String::as_str));
    let mut t = TextTable::new(
        "Table II: average hot vertices per 64B cache block (8B properties)",
        header,
    );
    let mut row = vec!["Avg.".to_owned()];
    for ds in &datasets {
        let g = h.graph(ds);
        let v = hot_vertices_per_block(&g.out_degrees(), 8);
        row.push(format!("{v:.1}"));
    }
    t.row(row);
    t.note("paper: 1.3-3.5; 8 would be perfect packing");
    t.note("structured datasets (lj/wl/fr/mp) pack more hot vertices per block");
    t.to_string()
}
