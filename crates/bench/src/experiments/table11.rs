//! Table XI: reordering time of the HubSort/HubCluster variants,
//! normalized to Sort.

use lgr_core::TechniqueId;
use lgr_graph::datasets::DatasetId;
use lgr_graph::DegreeKind;

use crate::{Harness, TextTable};

/// Regenerates Table XI.
pub fn run(h: &Harness) -> String {
    let techniques = [
        TechniqueId::HubSortO,
        TechniqueId::HubSort,
        TechniqueId::HubClusterO,
        TechniqueId::HubCluster,
        TechniqueId::Dbg,
    ];
    let mut header = vec!["technique"];
    header.extend(DatasetId::SKEWED.iter().map(|d| d.name()));
    let mut t = TextTable::new(
        "Table XI: reordering time normalized to Sort (lower is better)",
        header,
    );
    for tech in techniques {
        let mut row = vec![tech.name().to_owned()];
        for ds in DatasetId::SKEWED {
            let sort = h
                .reorder(ds, TechniqueId::Sort, DegreeKind::Out)
                .elapsed
                .as_secs_f64();
            let this = h.reorder(ds, tech, DegreeKind::Out).elapsed.as_secs_f64();
            row.push(format!("{:.2}", this / sort.max(1e-9)));
        }
        t.row(row);
    }
    t.note("paper: grouping-framework implementations ~0.74-0.91x of Sort; DBG is cheapest of all (no sorting at all)");
    t.to_string()
}
