//! Table XI: reordering time of the HubSort/HubCluster variants,
//! normalized to Sort.

use lgr_engine::{Session, TechniqueSpec};
use lgr_graph::DegreeKind;

use crate::TextTable;

/// Regenerates Table XI.
pub fn run(h: &Session) -> String {
    let techniques = h.selected_techniques(&[
        TechniqueSpec::hubsort_o(),
        TechniqueSpec::hubsort(),
        TechniqueSpec::hubcluster_o(),
        TechniqueSpec::hubcluster(),
        TechniqueSpec::dbg(),
    ]);
    let datasets = h.main_datasets();
    if techniques.is_empty() || datasets.is_empty() {
        return super::skipped("Table XI");
    }
    let sort = TechniqueSpec::sort();
    let labels: Vec<String> = datasets.iter().map(|d| d.label()).collect();
    let mut header = vec!["technique"];
    header.extend(labels.iter().map(String::as_str));
    let mut t = TextTable::new(
        "Table XI: reordering time normalized to Sort (lower is better)",
        header,
    );
    for tech in &techniques {
        let mut row = vec![tech.label()];
        for ds in &datasets {
            let sort_secs = h
                .dataset_reorder(ds, &sort, DegreeKind::Out)
                .elapsed
                .as_secs_f64();
            let this = h
                .dataset_reorder(ds, tech, DegreeKind::Out)
                .elapsed
                .as_secs_f64();
            row.push(format!("{:.2}", this / sort_secs.max(1e-9)));
        }
        t.row(row);
    }
    t.note("paper: grouping-framework implementations ~0.74-0.91x of Sort; DBG is cheapest of all (no sorting at all)");
    t.to_string()
}
