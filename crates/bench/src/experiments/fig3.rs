//! Fig. 3: Radii slowdown after random reordering at different
//! granularities — the structure-preservation probe.

use lgr_analytics::apps::AppId;
use lgr_engine::{AppSpec, Session, TechniqueSpec};

use crate::TextTable;

/// Regenerates Fig. 3.
pub fn run(h: &Session) -> String {
    let techniques = h.selected_techniques(&[
        TechniqueSpec::rv(),
        TechniqueSpec::rcb(1),
        TechniqueSpec::rcb(2),
        TechniqueSpec::rcb(4),
    ]);
    let mut apps = h.selected_apps(&[AppSpec::new(AppId::Radii)]);
    let datasets = h.main_datasets();
    if techniques.is_empty() || apps.is_empty() || datasets.is_empty() {
        return super::skipped("Fig. 3");
    }
    // Use the selected spec so `--apps radii:rounds=...` knobs apply.
    let radii = apps.remove(0);
    let labels: Vec<String> = techniques.iter().map(TechniqueSpec::label).collect();
    let mut header = vec!["dataset"];
    header.extend(labels.iter().map(String::as_str));
    let mut t = TextTable::new(
        "Fig. 3: Radii slowdown (%) after random reordering (higher = worse)",
        header,
    );
    for ds in &datasets {
        let mut row = vec![ds.label()];
        for tech in &techniques {
            let s = h.speedup(&radii, ds, tech);
            // Slowdown% = (time_with / time_base - 1) * 100 = (1/s - 1) * 100.
            let slowdown = (1.0 / s - 1.0) * 100.0;
            row.push(format!("{slowdown:.1}"));
        }
        t.row(row);
    }
    t.note("paper: RV worst; slowdown shrinks as granularity grows (RCB-1 > RCB-2 > RCB-4)");
    t.note("paper: kr (synthetic, structureless) is insensitive; real datasets slow 9.6-28.5% under RCB-1");
    t.to_string()
}
