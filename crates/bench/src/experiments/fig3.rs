//! Fig. 3: Radii slowdown after random reordering at different
//! granularities — the structure-preservation probe.

use lgr_analytics::apps::AppId;
use lgr_core::TechniqueId;
use lgr_graph::datasets::DatasetId;

use crate::{Harness, TextTable};

/// Regenerates Fig. 3.
pub fn run(h: &Harness) -> String {
    let techniques = [
        TechniqueId::RandomVertex,
        TechniqueId::RandomCacheBlock(1),
        TechniqueId::RandomCacheBlock(2),
        TechniqueId::RandomCacheBlock(4),
    ];
    let mut header = vec!["dataset"];
    header.extend(techniques.iter().map(|t| t.name()));
    let mut t = TextTable::new(
        "Fig. 3: Radii slowdown (%) after random reordering (higher = worse)",
        header,
    );
    for ds in DatasetId::SKEWED {
        let mut row = vec![ds.name().to_owned()];
        for &tech in &techniques {
            let s = h.speedup(AppId::Radii, ds, tech);
            // Slowdown% = (time_with / time_base - 1) * 100 = (1/s - 1) * 100.
            let slowdown = (1.0 / s - 1.0) * 100.0;
            row.push(format!("{slowdown:.1}"));
        }
        t.row(row);
    }
    t.note("paper: RV worst; slowdown shrinks as granularity grows (RCB-1 > RCB-2 > RCB-4)");
    t.note("paper: kr (synthetic, structureless) is insensitive; real datasets slow 9.6-28.5% under RCB-1");
    t.to_string()
}
