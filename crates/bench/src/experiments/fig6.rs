//! Fig. 6: the main result — application speedup excluding reordering
//! time, five apps x eight datasets x five techniques.

use lgr_engine::{AppSpec, Session, TechniqueSpec};
use lgr_graph::datasets::DatasetId;

use crate::table::geomean;
use crate::TextTable;

/// Regenerates Fig. 6 (a: unstructured, b: structured), plus the
/// paper's headline averages.
pub fn run(h: &Session) -> String {
    let techs = h.main_eval();
    let apps = h.eval_apps();
    if techs.is_empty() || apps.is_empty() {
        return super::skipped("Fig. 6");
    }
    let mut out = String::new();
    out.push_str(&panel(
        h,
        &techs,
        &apps,
        "Fig. 6a: speedup (%) excluding reordering time — unstructured datasets",
        &DatasetId::UNSTRUCTURED,
    ));
    out.push('\n');
    out.push_str(&panel(
        h,
        &techs,
        &apps,
        "Fig. 6b: speedup (%) excluding reordering time — structured datasets",
        &DatasetId::STRUCTURED,
    ));
    out.push('\n');
    out.push_str(&summary(h, &techs, &apps));
    out
}

fn panel(
    h: &Session,
    techs: &[TechniqueSpec],
    apps: &[AppSpec],
    title: &str,
    datasets: &[DatasetId],
) -> String {
    let labels: Vec<String> = techs.iter().map(TechniqueSpec::label).collect();
    let mut header = vec!["app", "dataset"];
    header.extend(labels.iter().map(String::as_str));
    let mut t = TextTable::new(title, header);
    for app in apps {
        for &ds in datasets {
            let mut row = vec![app.label().to_owned(), ds.name().to_owned()];
            for tech in techs {
                let s = h.speedup(app, ds, tech);
                row.push(format!("{:+.1}", (s - 1.0) * 100.0));
            }
            t.row(row);
        }
    }
    // Per-technique geomean over this panel.
    let mut gm = vec!["GMean".to_owned(), String::new()];
    for tech in techs {
        let ratios: Vec<f64> = apps
            .iter()
            .flat_map(|app| datasets.iter().map(move |&ds| h.speedup(app, ds, tech)))
            .collect();
        gm.push(format!("{:+.1}", (geomean(&ratios) - 1.0) * 100.0));
    }
    t.row(gm);
    t.to_string()
}

fn summary(h: &Session, techs: &[TechniqueSpec], apps: &[AppSpec]) -> String {
    let mut t = TextTable::new(
        "Fig. 6 summary: geometric-mean speedup (%) across all 40 datapoints",
        vec!["technique", "all", "unstructured", "structured"],
    );
    for tech in techs {
        let collect = |dss: &[DatasetId]| -> f64 {
            let ratios: Vec<f64> = apps
                .iter()
                .flat_map(|app| dss.iter().map(move |&ds| h.speedup(app, ds, tech)))
                .collect();
            (geomean(&ratios) - 1.0) * 100.0
        };
        t.row(vec![
            tech.label(),
            format!("{:+.1}", collect(&DatasetId::SKEWED)),
            format!("{:+.1}", collect(&DatasetId::UNSTRUCTURED)),
            format!("{:+.1}", collect(&DatasetId::STRUCTURED)),
        ]);
    }
    t.note(
        "paper: DBG +16.8% overall vs Sort +8.4%, HubSort +7.9%, HubCluster +11.6%, Gorder +18.6%",
    );
    t.note("paper: on structured datasets Sort/HubSort go NEGATIVE while DBG stays positive");
    t.to_string()
}
