//! Fig. 6: the main result — application speedup excluding reordering
//! time, five apps x eight datasets x five techniques.

use lgr_engine::{AppSpec, DatasetSpec, Session, TechniqueSpec};

use crate::table::geomean;
use crate::TextTable;

/// Regenerates Fig. 6 (a: unstructured, b: structured), plus the
/// paper's headline averages. A `--datasets` selection replaces the
/// two class panels with one panel over the selection verbatim, so
/// external `file:`/`lgr:` graphs run the full pipeline here.
pub fn run(h: &Session) -> String {
    let techs = h.main_eval();
    let apps = h.eval_apps();
    let datasets = h.main_datasets();
    if techs.is_empty() || apps.is_empty() || datasets.is_empty() {
        return super::skipped("Fig. 6");
    }
    let mut out = String::new();
    if h.config().datasets.is_none() {
        out.push_str(&panel(
            h,
            &techs,
            &apps,
            "Fig. 6a: speedup (%) excluding reordering time — unstructured datasets",
            &DatasetSpec::unstructured(),
        ));
        out.push('\n');
        out.push_str(&panel(
            h,
            &techs,
            &apps,
            "Fig. 6b: speedup (%) excluding reordering time — structured datasets",
            &DatasetSpec::structured(),
        ));
    } else {
        out.push_str(&panel(
            h,
            &techs,
            &apps,
            "Fig. 6: speedup (%) excluding reordering time — selected datasets",
            &datasets,
        ));
    }
    out.push('\n');
    out.push_str(&summary(h, &techs, &apps, &datasets));
    out
}

fn panel(
    h: &Session,
    techs: &[TechniqueSpec],
    apps: &[AppSpec],
    title: &str,
    datasets: &[DatasetSpec],
) -> String {
    let labels: Vec<String> = techs.iter().map(TechniqueSpec::label).collect();
    let mut header = vec!["app", "dataset"];
    header.extend(labels.iter().map(String::as_str));
    let mut t = TextTable::new(title, header);
    for app in apps {
        for ds in datasets {
            let mut row = vec![app.label().to_owned(), ds.label()];
            for tech in techs {
                let s = h.speedup(app, ds, tech);
                row.push(format!("{:+.1}", (s - 1.0) * 100.0));
            }
            t.row(row);
        }
    }
    // Per-technique geomean over this panel.
    let mut gm = vec!["GMean".to_owned(), String::new()];
    for tech in techs {
        let ratios: Vec<f64> = apps
            .iter()
            .flat_map(|app| datasets.iter().map(move |ds| h.speedup(app, ds, tech)))
            .collect();
        gm.push(format!("{:+.1}", (geomean(&ratios) - 1.0) * 100.0));
    }
    t.row(gm);
    t.to_string()
}

fn summary(
    h: &Session,
    techs: &[TechniqueSpec],
    apps: &[AppSpec],
    datasets: &[DatasetSpec],
) -> String {
    // Classify the active roster; external sources (unknown class)
    // count toward "all" only.
    let unstructured: Vec<DatasetSpec> = datasets
        .iter()
        .filter(|d| d.is_structured() == Some(false) && d.is_skewed() == Some(true))
        .cloned()
        .collect();
    let structured: Vec<DatasetSpec> = datasets
        .iter()
        .filter(|d| d.is_structured() == Some(true))
        .cloned()
        .collect();
    let mut t = TextTable::new(
        "Fig. 6 summary: geometric-mean speedup (%) across all 40 datapoints",
        vec!["technique", "all", "unstructured", "structured"],
    );
    for tech in techs {
        let collect = |dss: &[DatasetSpec]| -> String {
            if dss.is_empty() {
                return "n/a".to_owned();
            }
            let ratios: Vec<f64> = apps
                .iter()
                .flat_map(|app| dss.iter().map(move |ds| h.speedup(app, ds, tech)))
                .collect();
            format!("{:+.1}", (geomean(&ratios) - 1.0) * 100.0)
        };
        t.row(vec![
            tech.label(),
            collect(datasets),
            collect(&unstructured),
            collect(&structured),
        ]);
    }
    t.note(
        "paper: DBG +16.8% overall vs Sort +8.4%, HubSort +7.9%, HubCluster +11.6%, Gorder +18.6%",
    );
    t.note("paper: on structured datasets Sort/HubSort go NEGATIVE while DBG stays positive");
    t.to_string()
}
