//! Table III: cache capacity needed to hold every hot vertex.

use lgr_graph::stats::hot_footprint_mib;

use lgr_engine::Session;

use crate::TextTable;

/// Regenerates Table III.
pub fn run(h: &Session) -> String {
    let datasets = h.main_datasets();
    if datasets.is_empty() {
        return super::skipped("Table III");
    }
    let labels: Vec<String> = datasets.iter().map(|d| d.label()).collect();
    let mut header = vec!["per-vertex property"];
    header.extend(labels.iter().map(String::as_str));
    let mut t = TextTable::new(
        "Table III: capacity (KiB at this scale) to store all hot vertices",
        header,
    );
    for bytes in [8usize, 16] {
        let mut row = vec![format!("{bytes} bytes")];
        for ds in &datasets {
            let g = h.graph(ds);
            let kib = hot_footprint_mib(&g.out_degrees(), bytes) * 1024.0;
            row.push(format!("{kib:.0}"));
        }
        t.row(row);
    }
    let llc_kib = (h.config().sim.llc_bytes * h.config().sim.sockets) as f64 / 1024.0;
    t.note(&format!(
        "total simulated LLC = {llc_kib:.0} KiB; large datasets exceed it, reproducing the paper's regime (paper: 9-230 MB vs 50 MB LLC)"
    ));
    t.to_string()
}
