//! Table V: every skew-aware technique expressed as an instance of the
//! generalized grouping framework.

use lgr_core::framework::GroupingSpec;
use lgr_engine::{DatasetSpec, Session};
use lgr_graph::datasets::DatasetId;
use lgr_graph::DegreeKind;

use crate::TextTable;

/// Regenerates Table V (group counts for the `sd` dataset's actual
/// degree statistics).
pub fn run(h: &Session) -> String {
    let selected = h.selected_datasets(&[DatasetSpec::from(DatasetId::Sd)]);
    let Some(sd) = selected.first() else {
        return super::skipped("Table V");
    };
    let g = h.graph(sd);
    let degrees = DegreeKind::Out.degrees(&g);
    let avg = lgr_graph::average_degree(&degrees);
    let max = degrees.iter().copied().max().unwrap_or(0);

    let mut t = TextTable::new(
        &format!(
            "Table V: techniques as grouping instances ({}: A={avg:.1}, M={max})",
            sd.label()
        ),
        vec!["technique", "#groups", "range structure"],
    );
    let sort = GroupingSpec::sort(max);
    t.row(vec![
        "Sort".into(),
        sort.num_groups().to_string(),
        "[n, n+1) for n in [0, M]".into(),
    ]);
    let hs = GroupingSpec::hub_sorting(avg, max);
    t.row(vec![
        "HubSort".into(),
        hs.num_groups().to_string(),
        "[0, A) + [n, n+1) for n in [A, M]".into(),
    ]);
    let hc = GroupingSpec::hub_clustering(avg);
    t.row(vec![
        "HubCluster".into(),
        hc.num_groups().to_string(),
        "[0, A) + [A, M]".into(),
    ]);
    let dbg = GroupingSpec::dbg(avg, 6);
    let bounds: Vec<String> = dbg.lower_bounds().iter().map(u32::to_string).collect();
    t.row(vec![
        "DBG".into(),
        dbg.num_groups().to_string(),
        format!("geometric, lower bounds [{}]", bounds.join(", ")),
    ]);
    t.note("paper: Sort = M+1 groups, HubSort = M-A+2, HubCluster = 2, DBG = ~8");
    t.to_string()
}
