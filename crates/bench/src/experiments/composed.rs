//! Sec. VII extension: Gorder+DBG layering — keep most of Gorder's
//! structure-aware quality while making hot vertices contiguous.

use lgr_engine::{Session, TechniqueSpec};

use crate::table::geomean;
use crate::TextTable;

/// Regenerates the paper's Gorder+DBG comparison (Sec. VII reports
/// +17.2% for Gorder+DBG vs +18.6% for Gorder alone across the 40
/// datapoints).
pub fn run(h: &Session) -> String {
    let techniques = h.selected_techniques(&[
        TechniqueSpec::dbg(),
        TechniqueSpec::gorder(),
        TechniqueSpec::gorder_dbg(),
    ]);
    let apps = h.eval_apps();
    let datasets = h.main_datasets();
    if techniques.is_empty() || apps.is_empty() || datasets.is_empty() {
        return super::skipped("Sec. VII (composed)");
    }
    let labels: Vec<String> = techniques.iter().map(TechniqueSpec::label).collect();
    let mut header = vec!["dataset"];
    header.extend(labels.iter().map(String::as_str));
    let mut t = TextTable::new(
        "Sec. VII: Gorder+DBG layering — speedup (%) excluding reordering time",
        header,
    );
    let mut per_tech: Vec<Vec<f64>> = vec![Vec::new(); techniques.len()];
    for ds in &datasets {
        let mut row = vec![ds.label()];
        for (i, tech) in techniques.iter().enumerate() {
            let ratios: Vec<f64> = apps.iter().map(|app| h.speedup(app, ds, tech)).collect();
            let gm = geomean(&ratios);
            per_tech[i].push(gm);
            row.push(format!("{:+.1}", (gm - 1.0) * 100.0));
        }
        t.row(row);
    }
    let mut gm_row = vec!["GMean".to_owned()];
    for ratios in &per_tech {
        gm_row.push(format!("{:+.1}", (geomean(ratios) - 1.0) * 100.0));
    }
    t.row(gm_row);
    t.note("paper: the composition retains most of Gorder's speedup while making hot vertices contiguous (a prerequisite for domain-specialized hardware caching)");
    t.to_string()
}
