//! Fig. 9: where L2 misses are served for the push-dominated apps
//! (SSSP, PRD), original ordering vs DBG.

use lgr_analytics::apps::AppId;
use lgr_engine::{AppSpec, Job, Session, TechniqueSpec};

use crate::table::pct;
use crate::TextTable;

/// Regenerates Fig. 9.
pub fn run(h: &Session) -> String {
    let apps = h.selected_apps(&[AppSpec::new(AppId::Sssp), AppSpec::new(AppId::Prd)]);
    let dbg = h.selected_techniques(&[TechniqueSpec::dbg()]);
    let datasets = h.main_datasets();
    if apps.is_empty() || dbg.is_empty() || datasets.is_empty() {
        return super::skipped("Fig. 9");
    }
    let mut out = String::new();
    for (tech, title) in [
        (None, "Fig. 9a: L2 miss break-up (%) — original ordering"),
        (
            Some(TechniqueSpec::dbg()),
            "Fig. 9b: L2 miss break-up (%) — DBG reordering",
        ),
    ] {
        let mut t = TextTable::new(
            title,
            vec![
                "app",
                "dataset",
                "L3 hits",
                "snoop (local)",
                "snoop (remote)",
                "off-chip",
            ],
        );
        for app in &apps {
            for ds in &datasets {
                let mut job = Job::new(app.clone(), ds.clone());
                if let Some(spec) = &tech {
                    job = job.with_technique(spec.clone());
                }
                let stats = h.run(&job).stats;
                let f = stats.l2_breakdown.fractions();
                t.row(vec![
                    app.label().to_owned(),
                    ds.label(),
                    pct(f[0]),
                    pct(f[1]),
                    pct(f[2]),
                    pct(f[3]),
                ]);
            }
        }
        t.note("paper: PRD (unconditional pushes) snoops far more than SSSP (conditional writes)");
        if tech.is_some() {
            t.note("paper: DBG cuts off-chip accesses, but for PRD most of the recovered requests still pay snoop latency");
        }
        out.push_str(&t.to_string());
        out.push('\n');
    }
    out
}
