//! Fig. 9: where L2 misses are served for the push-dominated apps
//! (SSSP, PRD), original ordering vs DBG.

use lgr_analytics::apps::AppId;
use lgr_core::TechniqueId;
use lgr_graph::datasets::DatasetId;

use crate::table::pct;
use crate::{Harness, TextTable};

/// Regenerates Fig. 9.
pub fn run(h: &Harness) -> String {
    let mut out = String::new();
    for (tech, title) in [
        (None, "Fig. 9a: L2 miss break-up (%) — original ordering"),
        (
            Some(TechniqueId::Dbg),
            "Fig. 9b: L2 miss break-up (%) — DBG reordering",
        ),
    ] {
        let mut t = TextTable::new(
            title,
            vec![
                "app",
                "dataset",
                "L3 hits",
                "snoop (local)",
                "snoop (remote)",
                "off-chip",
            ],
        );
        for app in [AppId::Sssp, AppId::Prd] {
            for ds in DatasetId::SKEWED {
                let stats = h.run(app, ds, tech).stats;
                let f = stats.l2_breakdown.fractions();
                t.row(vec![
                    app.name().to_owned(),
                    ds.name().to_owned(),
                    pct(f[0]),
                    pct(f[1]),
                    pct(f[2]),
                    pct(f[3]),
                ]);
            }
        }
        t.note("paper: PRD (unconditional pushes) snoops far more than SSSP (conditional writes)");
        if tech.is_some() {
            t.note("paper: DBG cuts off-chip accesses, but for PRD most of the recovered requests still pay snoop latency");
        }
        out.push_str(&t.to_string());
        out.push('\n');
    }
    out
}
