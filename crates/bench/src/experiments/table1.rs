//! Table I: hot-vertex fraction and edge coverage, in- and out-degree.

use lgr_graph::stats::SkewStats;

use crate::table::pct;
use lgr_engine::Session;

use crate::TextTable;

/// Regenerates Table I over the evaluated datasets (the `--datasets`
/// selection when one is set, else the paper's eight skewed graphs).
pub fn run(h: &Session) -> String {
    let datasets = h.main_datasets();
    if datasets.is_empty() {
        return super::skipped("Table I");
    }
    let labels: Vec<String> = datasets.iter().map(|d| d.label()).collect();
    let mut header = vec!["metric"];
    header.extend(labels.iter().map(String::as_str));
    let mut t = TextTable::new(
        "Table I: skew of the evaluated datasets (hot = degree >= average)",
        header,
    );
    let mut in_hot = vec!["In: Hot Vertices (%)".to_owned()];
    let mut in_cov = vec!["In: Edge Coverage (%)".to_owned()];
    let mut out_hot = vec!["Out: Hot Vertices (%)".to_owned()];
    let mut out_cov = vec!["Out: Edge Coverage (%)".to_owned()];
    for ds in &datasets {
        let g = h.graph(ds);
        let si = SkewStats::from_degrees(&g.in_degrees());
        let so = SkewStats::from_degrees(&g.out_degrees());
        in_hot.push(pct(si.hot_vertex_fraction));
        in_cov.push(pct(si.edge_coverage));
        out_hot.push(pct(so.hot_vertex_fraction));
        out_cov.push(pct(so.edge_coverage));
    }
    t.row(in_hot);
    t.row(in_cov);
    t.row(out_hot);
    t.row(out_cov);
    t.note("paper band: 9-26% hot vertices covering 80-94% of edges");
    t.to_string()
}
