//! Sec. VIII-B extension: amortizing reordering on an evolving graph.
//!
//! A stream of update batches is interleaved with PageRank queries.
//! Three policies are compared end to end (query cycles + reordering
//! cost): never reorder, reorder with DBG once up front, and
//! re-apply DBG every `R` batches. The hot-set overlap column
//! quantifies the paper's claim that churn barely moves the hot set.

use lgr_analytics::apps::AppId;
use lgr_engine::{DatasetSpec, Session, TechniqueSpec};
use lgr_graph::datasets::DatasetId;
use lgr_graph::evolve::{hot_set_overlap, ChurnConfig, EvolvingGraph};

use crate::TextTable;

/// Runs the evolving-graph amortization study on the `sd` analogue.
pub fn run(h: &Session) -> String {
    // This is a DBG/PR study: honor the session filters like every
    // other experiment.
    let selected = h.selected_datasets(&[DatasetSpec::from(DatasetId::Sd)]);
    let Some(ds) = selected.first() else {
        return super::skipped("Sec. VIII-B (dynamic)");
    };
    if h.selected_techniques(&[TechniqueSpec::dbg()]).is_empty()
        || h.selected_apps(&[lgr_engine::AppSpec::new(AppId::Pr)])
            .is_empty()
    {
        return super::skipped("Sec. VIII-B (dynamic)");
    }
    let base_graph = h.graph(ds);
    let base_el = base_graph.to_edge_list();
    let num_batches = 8usize;
    let queries_per_batch = 1usize;
    let kind = AppId::Pr.reorder_degree();

    let mut t = TextTable::new(
        &format!(
            "Sec. VIII-B: reordering policies on an evolving graph ({}, 8 update batches)",
            ds.label()
        ),
        vec![
            "policy",
            "query cycles (G)",
            "reorder cycles (G)",
            "total (G)",
            "net speedup (%)",
        ],
    );

    // Churn ~2% of edges per batch.
    let churn = ChurnConfig {
        additions: base_graph.num_edges() / 50,
        removals: base_graph.num_edges() / 50,
        preferential: true,
    };

    let mut never = 0u64;
    let mut once = 0u64;
    let mut once_reorder = 0u64;
    let mut periodic = 0u64;
    let mut periodic_reorder = 0u64;
    let mut overlap_acc = 0.0f64;

    // Policy "once": reorder the initial snapshot, keep the (stale)
    // permutation as batches land. Policy "periodic": re-reorder every
    // 4 batches.
    let mut evolving = EvolvingGraph::from_edge_list(&base_el, 99);
    let initial_degrees = evolving.out_degrees();
    let dbg = TechniqueSpec::dbg();
    let first = h.reorder_with_kind(&base_graph, &dbg, kind);
    once_reorder += h.wall_to_cycles(ds, first.elapsed);
    periodic_reorder += h.wall_to_cycles(ds, first.elapsed);
    let mut once_perm = first.permutation.clone();
    let mut periodic_perm = first.permutation;

    for batch_idx in 0..num_batches {
        let batch = evolving.synthesize_batch(churn);
        evolving.apply(&batch);
        let snapshot = evolving.snapshot();
        overlap_acc += hot_set_overlap(&initial_degrees, &evolving.out_degrees());

        if batch_idx % 4 == 3 {
            let re = h.reorder_with_kind(&snapshot, &dbg, kind);
            periodic_reorder += h.wall_to_cycles(ds, re.elapsed);
            periodic_perm = re.permutation;
        }

        for _ in 0..queries_per_batch {
            never += h.simulate_pr(&snapshot);
            once += h.simulate_pr(&snapshot.apply_permutation(&once_perm));
            periodic += h.simulate_pr(&snapshot.apply_permutation(&periodic_perm));
        }
        // The "once" permutation is never refreshed.
        once_perm = once_perm.clone();
    }

    let giga = |c: u64| format!("{:.2}", c as f64 / 1e9);
    let net = |q: u64, r: u64| format!("{:+.1}", (never as f64 / (q + r) as f64 - 1.0) * 100.0);
    t.row(vec![
        "never reorder".into(),
        giga(never),
        "0.00".into(),
        giga(never),
        "+0.0".into(),
    ]);
    t.row(vec![
        "DBG once (stale)".into(),
        giga(once),
        giga(once_reorder),
        giga(once + once_reorder),
        net(once, once_reorder),
    ]);
    t.row(vec![
        "DBG every 4 batches".into(),
        giga(periodic),
        giga(periodic_reorder),
        giga(periodic + periodic_reorder),
        net(periodic, periodic_reorder),
    ]);
    t.note(&format!(
        "mean hot-set overlap with the initial snapshot across batches: {:.2} (paper's stability claim)",
        overlap_acc / num_batches as f64
    ));
    t.note("a stale DBG permutation keeps paying off because churn barely moves the hot set; periodic refresh recovers the residual at modest cost");
    t.to_string()
}
