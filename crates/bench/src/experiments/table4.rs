//! Table IV: degree-range distribution of the hot vertices of `sd`.

use lgr_engine::{DatasetSpec, Session};
use lgr_graph::datasets::DatasetId;
use lgr_graph::stats::DegreeRangeDist;

use crate::table::pct;

use crate::TextTable;

/// Regenerates Table IV.
pub fn run(h: &Session) -> String {
    let selected = h.selected_datasets(&[DatasetSpec::from(DatasetId::Sd)]);
    let Some(sd) = selected.first() else {
        return super::skipped("Table IV");
    };
    let g = h.graph(sd);
    let dist = DegreeRangeDist::compute(&g.out_degrees(), 6, 8);
    let mut header = vec!["metric".to_owned()];
    for b in &dist.buckets {
        header.push(match b.upper_multiple {
            Some(u) => format!("[{}A,{}A)", b.lower_multiple, u),
            None => format!("[{}A,inf)", b.lower_multiple),
        });
    }
    let mut t = TextTable::new(
        &format!(
            "Table IV: hot-vertex degree distribution for {} (A = {:.1})",
            sd.label(),
            dist.average_degree
        ),
        header.iter().map(String::as_str).collect(),
    );
    let mut frac = vec!["Vertices (%)".to_owned()];
    let mut foot = vec!["Footprint (KiB)".to_owned()];
    for b in &dist.buckets {
        frac.push(pct(b.hot_fraction));
        foot.push(format!("{:.1}", b.footprint_mib * 1024.0));
    }
    t.row(frac);
    t.row(foot);
    t.note("paper: 45/28/15/7/3/2 % — halving per doubled range (power law)");
    t.to_string()
}
