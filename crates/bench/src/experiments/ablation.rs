//! Ablation: DBG's group count — the knob the grouping framework
//! (Table V) exposes between HubCluster-like coarseness (1 hot group)
//! and Sort-like fineness (many groups).

use lgr_analytics::apps::AppId;
use lgr_core::Dbg;
use lgr_engine::{AppSpec, DatasetSpec, Job, Session, TechniqueSpec};
use lgr_graph::datasets::DatasetId;

use crate::TextTable;

/// Sweeps DBG's number of geometric hot groups on one unstructured
/// and one structured dataset, reporting PR speedup and structure
/// preservation. Every swept variant is addressed through the spec
/// layer (`dbg:groups=k`) — the parameterizations the closed
/// `TechniqueId` enum could never name.
pub fn run(h: &Session) -> String {
    // This is a DBG/PR study: honor the session filters like every
    // other experiment.
    let datasets = h.selected_datasets(&[
        DatasetSpec::from(DatasetId::Sd),
        DatasetSpec::from(DatasetId::Mp),
    ]);
    if h.selected_techniques(&[TechniqueSpec::dbg()]).is_empty()
        || h.selected_apps(&[AppSpec::new(AppId::Pr)]).is_empty()
        || datasets.is_empty()
    {
        return super::skipped("Ablation");
    }
    // The sweep compares against `Session::simulate_pr`, which runs
    // PR at the session defaults; the baseline deliberately uses the
    // same bare spec so both sides of the comparison match (app knob
    // overrides are ignored here by design).
    let group_counts = [1u32, 2, 4, 6, 8, 10];
    let mut out = String::new();
    for ds in &datasets {
        let mut t = TextTable::new(
            &format!(
                "Ablation: DBG hot-group count on {} ({})",
                ds.label(),
                match ds.is_structured() {
                    Some(true) => "structured",
                    Some(false) => "unstructured",
                    None => "external",
                }
            ),
            vec![
                "spec",
                "total groups",
                "PR speedup (%)",
                "adjacency preserved (%)",
                "reorder (ms)",
            ],
        );
        let graph = h.graph(ds);
        let base = h
            .run(&Job::new(AppSpec::new(AppId::Pr), ds.clone()))
            .cycles() as f64;
        for &k in &group_counts {
            let spec = TechniqueSpec::dbg_groups(k);
            let timed = h.reorder_with_kind(&graph, &spec, AppId::Pr.reorder_degree());
            let grouping = Dbg::with_hot_groups(k).spec_for(graph.average_degree());
            let reordered = graph.apply_permutation(&timed.permutation);
            let cycles = h.simulate_pr(&reordered) as f64;
            t.row(vec![
                spec.to_string(),
                grouping.num_groups().to_string(),
                format!("{:+.1}", (base / cycles - 1.0) * 100.0),
                format!("{:.1}", timed.permutation.adjacency_preservation() * 100.0),
                format!("{:.1}", timed.elapsed.as_secs_f64() * 1e3),
            ]);
        }
        t.note("more groups = finer binning = less structure preserved; the paper picks 8 total groups as the sweet spot");
        out.push_str(&t.to_string());
        out.push('\n');
    }
    out
}
