//! Ablation: DBG's group count — the knob the grouping framework
//! (Table V) exposes between HubCluster-like coarseness (1 hot group)
//! and Sort-like fineness (many groups).

use lgr_analytics::apps::AppId;
use lgr_core::{Dbg, TimedReorder};
use lgr_graph::datasets::DatasetId;

use crate::{Harness, TextTable};

/// Sweeps DBG's number of geometric hot groups on one unstructured
/// and one structured dataset, reporting PR speedup and structure
/// preservation.
pub fn run(h: &Harness) -> String {
    let group_counts = [1u32, 2, 4, 6, 8, 10];
    let mut out = String::new();
    for ds in [DatasetId::Sd, DatasetId::Mp] {
        let mut t = TextTable::new(
            &format!(
                "Ablation: DBG hot-group count on {} ({})",
                ds.name(),
                if ds.is_structured() {
                    "structured"
                } else {
                    "unstructured"
                }
            ),
            vec![
                "hot groups",
                "total groups",
                "PR speedup (%)",
                "adjacency preserved (%)",
                "reorder (ms)",
            ],
        );
        let graph = h.graph(ds);
        let base = h.run(AppId::Pr, ds, None).cycles() as f64;
        for &k in &group_counts {
            let dbg = Dbg::with_hot_groups(k);
            let timed = TimedReorder::run(&dbg, &graph, AppId::Pr.reorder_degree());
            let spec = dbg.spec_for(graph.average_degree());
            let reordered = graph.apply_permutation(&timed.permutation);
            let cycles = h.simulate_pr(&reordered) as f64;
            t.row(vec![
                k.to_string(),
                spec.num_groups().to_string(),
                format!("{:+.1}", (base / cycles - 1.0) * 100.0),
                format!("{:.1}", timed.permutation.adjacency_preservation() * 100.0),
                format!("{:.1}", timed.elapsed.as_secs_f64() * 1e3),
            ]);
        }
        t.note("more groups = finer binning = less structure preserved; the paper picks 8 total groups as the sweet spot");
        out.push_str(&t.to_string());
        out.push('\n');
    }
    out
}
