//! Fig. 11: SSSP net speedup as the number of traversals grows —
//! how fast each technique amortizes its reordering cost.

use lgr_analytics::apps::AppId;
use lgr_engine::{AppSpec, Session, TechniqueSpec};

use crate::table::geomean;
use crate::TextTable;

/// Regenerates Fig. 11.
pub fn run(h: &Session) -> String {
    let techs = h.main_eval();
    let mut apps = h.selected_apps(&[AppSpec::new(AppId::Sssp)]);
    let datasets = h.selected_datasets(&super::fig10::datasets());
    if techs.is_empty() || apps.is_empty() || datasets.is_empty() {
        return super::skipped("Fig. 11");
    }
    // Use the selected spec so `--apps sssp:roots=...` knobs apply.
    let sssp = apps.remove(0);
    let labels: Vec<String> = techs.iter().map(TechniqueSpec::label).collect();
    let traversal_counts = [1u64, 8, 16, 32];
    let mut out = String::new();
    for &k in &traversal_counts {
        let mut header = vec!["dataset"];
        header.extend(labels.iter().map(String::as_str));
        let mut t = TextTable::new(
            &format!("Fig. 11: SSSP net speedup (%) with {k} traversal(s)"),
            header,
        );
        for ds in &datasets {
            let mut row = vec![ds.label()];
            for tech in &techs {
                let s = h.net_speedup(&sssp, ds, tech, k);
                row.push(format!("{:+.1}", (s - 1.0) * 100.0));
            }
            t.row(row);
        }
        let mut gm = vec!["GMean".to_owned()];
        for tech in &techs {
            let ratios: Vec<f64> = datasets
                .iter()
                .map(|ds| h.net_speedup(&sssp, ds, tech, k))
                .collect();
            gm.push(format!("{:+.1}", (geomean(&ratios) - 1.0) * 100.0));
        }
        t.row(gm);
        out.push_str(&t.to_string());
        out.push('\n');
    }
    out.push_str(
        "paper: every technique loses at 1 traversal; DBG breaks even fastest (+11.5% average by 8 traversals vs +2.1% for the next best); Gorder never recovers in this range\n",
    );
    out
}
