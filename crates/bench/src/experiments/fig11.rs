//! Fig. 11: SSSP net speedup as the number of traversals grows —
//! how fast each technique amortizes its reordering cost.

use lgr_analytics::apps::AppId;
use lgr_core::TechniqueId;

use crate::experiments::fig10::DATASETS;
use crate::table::geomean;
use crate::{Harness, TextTable};

/// Regenerates Fig. 11.
pub fn run(h: &Harness) -> String {
    let traversal_counts = [1u64, 8, 16, 32];
    let mut out = String::new();
    for &k in &traversal_counts {
        let mut header = vec!["dataset"];
        header.extend(TechniqueId::MAIN_EVAL.iter().map(|t| t.name()));
        let mut t = TextTable::new(
            &format!("Fig. 11: SSSP net speedup (%) with {k} traversal(s)"),
            header,
        );
        for ds in DATASETS {
            let mut row = vec![ds.name().to_owned()];
            for tech in TechniqueId::MAIN_EVAL {
                let s = h.net_speedup(AppId::Sssp, ds, tech, k);
                row.push(format!("{:+.1}", (s - 1.0) * 100.0));
            }
            t.row(row);
        }
        let mut gm = vec!["GMean".to_owned()];
        for tech in TechniqueId::MAIN_EVAL {
            let ratios: Vec<f64> = DATASETS
                .iter()
                .map(|&ds| h.net_speedup(AppId::Sssp, ds, tech, k))
                .collect();
            gm.push(format!("{:+.1}", (geomean(&ratios) - 1.0) * 100.0));
        }
        t.row(gm);
        out.push_str(&t.to_string());
        out.push('\n');
    }
    out.push_str(
        "paper: every technique loses at 1 traversal; DBG breaks even fastest (+11.5% average by 8 traversals vs +2.1% for the next best); Gorder never recovers in this range\n",
    );
    out
}
