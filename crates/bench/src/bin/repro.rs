//! `repro` — regenerates the tables and figures of *A Closer Look at
//! Lightweight Graph Reordering* (IISWC'19) on synthetic dataset
//! analogues and a simulated memory hierarchy.
//!
//! Usage:
//!
//! ```text
//! repro [OPTIONS] <experiment>... | all | list
//!
//! Options:
//!   --quick              tiny graphs (CI smoke test)
//!   --scale <exp>        sd dataset gets 2^exp vertices (default 17)
//!   --roots <n>          roots per root-dependent app run (default 2)
//!   --techniques <list>  comma-separated technique specs (dbg,sort,rcb:4,...)
//!   --apps <list>        comma-separated app specs (pr,sssp,...)
//!   --sim <knobs>        simulator geometry (cores=8,sockets=2,...)
//!   --verbose            progress logging to stderr
//! ```
//!
//! Unknown experiment, technique, or app names exit with code 2 and
//! list the valid names.

use std::process::ExitCode;
use std::time::Instant;

use lgr_bench::experiments::{self, Experiment};
use lgr_bench::{AppSpec, Session, SessionConfig, SpecError, TechniqueSpec};
use lgr_cachesim::SimConfig;

/// Exit code for unknown experiment/technique/app names (distinct
/// from 1, which covers malformed flags).
const EXIT_UNKNOWN_NAME: u8 = 2;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Collect flags first, then build the config, so the outcome does
    // not depend on argument order (`--roots 4 --quick` must not have
    // `--quick` clobber the roots override).
    let mut quick = false;
    let mut verbose = false;
    let mut scale_exp: Option<u32> = None;
    let mut roots: Option<usize> = None;
    let mut techniques: Option<Vec<TechniqueSpec>> = None;
    let mut apps: Option<Vec<AppSpec>> = None;
    let mut sim: Option<SimConfig> = None;
    let mut names: Vec<String> = Vec::new();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--verbose" | "-v" => verbose = true,
            "--scale" => match iter.next().and_then(|s| s.parse::<u32>().ok()) {
                Some(exp) if (8..=24).contains(&exp) => scale_exp = Some(exp),
                _ => return usage("--scale needs an exponent in 8..=24"),
            },
            "--roots" => match iter.next().and_then(|s| s.parse::<usize>().ok()) {
                Some(n) if n >= 1 => roots = Some(n),
                _ => return usage("--roots needs a positive integer"),
            },
            "--techniques" => match iter.next() {
                Some(list) => match parse_list::<TechniqueSpec>(&list) {
                    Ok(specs) => techniques = Some(specs),
                    Err(e) => return spec_error(e),
                },
                None => return usage("--techniques needs a comma-separated list"),
            },
            "--apps" => match iter.next() {
                Some(list) => match parse_list::<AppSpec>(&list) {
                    Ok(specs) => apps = Some(specs),
                    Err(e) => return spec_error(e),
                },
                None => return usage("--apps needs a comma-separated list"),
            },
            "--sim" => match iter.next().map(|s| s.parse::<SimConfig>()) {
                Some(Ok(parsed)) => sim = Some(parsed),
                Some(Err(e)) => return usage(&e.to_string()),
                None => return usage("--sim needs a knob list (cores=8,sockets=2,...)"),
            },
            "--help" | "-h" => return usage(""),
            other if other.starts_with('-') => return usage(&format!("unknown option {other}")),
            other => names.push(other.to_owned()),
        }
    }
    let mut cfg = if quick {
        SessionConfig::quick()
    } else {
        SessionConfig::default()
    };
    if let Some(exp) = scale_exp {
        cfg = cfg.with_scale_exp(exp);
    }
    if let Some(n) = roots {
        cfg.roots = n;
    }
    if let Some(s) = sim {
        cfg.sim = s;
    }
    cfg.verbose = verbose;
    cfg.techniques = techniques;
    cfg.apps = apps;

    if names.iter().any(|n| n == "list") {
        for e in experiments::ALL {
            println!("{:<8} {}", e.name, e.description);
        }
        return ExitCode::SUCCESS;
    }
    let selected: Vec<&'static Experiment> = if names.is_empty() || names.iter().any(|n| n == "all")
    {
        experiments::ALL.iter().collect()
    } else {
        let mut v = Vec::new();
        for n in &names {
            match experiments::by_name(n) {
                Some(e) => v.push(e),
                None => {
                    let valid: Vec<&str> = experiments::ALL.iter().map(|e| e.name).collect();
                    return unknown_name(&format!(
                        "unknown experiment `{n}`; valid: {}",
                        valid.join(", ")
                    ));
                }
            }
        }
        v
    };

    println!(
        "# graph-reorder reproduction | sd = {} vertices | {} cores / {} sockets | {} root(s)\n",
        cfg.scale.sd_vertices, cfg.sim.cores, cfg.sim.sockets, cfg.roots
    );
    let session = Session::new(cfg);
    for e in selected {
        let start = Instant::now();
        let report = (e.run)(&session);
        println!("{report}");
        eprintln!(
            "[repro] {} done in {:.1}s",
            e.name,
            start.elapsed().as_secs_f64()
        );
    }
    ExitCode::SUCCESS
}

/// Parses a comma-separated spec list, surfacing the spec layer's
/// error (which names the offending token and the valid names).
fn parse_list<T: std::str::FromStr<Err = SpecError>>(list: &str) -> Result<Vec<T>, SpecError> {
    list.split(',').map(|s| s.trim().parse::<T>()).collect()
}

/// Unknown *names* exit 2; malformed values/parameters are flag
/// errors and exit 1 like every other bad flag.
fn spec_error(err: SpecError) -> ExitCode {
    match err {
        SpecError::UnknownTechnique { .. } | SpecError::UnknownApp { .. } => {
            unknown_name(&err.to_string())
        }
        _ => usage(&err.to_string()),
    }
}

fn unknown_name(err: &str) -> ExitCode {
    eprintln!("error: {err}");
    ExitCode::from(EXIT_UNKNOWN_NAME)
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: repro [--quick] [--scale <exp>] [--roots <n>] [--techniques <list>] [--apps <list>] [--sim <knobs>] [--verbose] <experiment>... | all | list"
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
