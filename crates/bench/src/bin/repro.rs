//! `repro` — regenerates the tables and figures of *A Closer Look at
//! Lightweight Graph Reordering* (IISWC'19) on synthetic dataset
//! analogues and a simulated memory hierarchy.
//!
//! Usage:
//!
//! ```text
//! repro [OPTIONS] <experiment>... | all | list
//!
//! Options:
//!   --quick        tiny graphs (CI smoke test)
//!   --scale <exp>  sd dataset gets 2^exp vertices (default 17)
//!   --roots <n>    roots per root-dependent app run (default 2)
//!   --verbose      progress logging to stderr
//! ```

use std::process::ExitCode;
use std::time::Instant;

use lgr_bench::experiments::{self, Experiment};
use lgr_bench::{Harness, HarnessConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Collect flags first, then build the config, so the outcome does
    // not depend on argument order (`--roots 4 --quick` must not have
    // `--quick` clobber the roots override).
    let mut quick = false;
    let mut verbose = false;
    let mut scale_exp: Option<u32> = None;
    let mut roots: Option<usize> = None;
    let mut names: Vec<String> = Vec::new();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--verbose" | "-v" => verbose = true,
            "--scale" => match iter.next().and_then(|s| s.parse::<u32>().ok()) {
                Some(exp) if (8..=24).contains(&exp) => scale_exp = Some(exp),
                _ => return usage("--scale needs an exponent in 8..=24"),
            },
            "--roots" => match iter.next().and_then(|s| s.parse::<usize>().ok()) {
                Some(n) if n >= 1 => roots = Some(n),
                _ => return usage("--roots needs a positive integer"),
            },
            "--help" | "-h" => return usage(""),
            other if other.starts_with('-') => return usage(&format!("unknown option {other}")),
            other => names.push(other.to_owned()),
        }
    }
    let mut cfg = if quick {
        HarnessConfig::quick()
    } else {
        HarnessConfig::default()
    };
    if let Some(exp) = scale_exp {
        cfg = cfg.with_scale_exp(exp);
    }
    if let Some(n) = roots {
        cfg.roots = n;
    }
    cfg.verbose = verbose;

    if names.iter().any(|n| n == "list") {
        for e in experiments::ALL {
            println!("{:<8} {}", e.name, e.description);
        }
        return ExitCode::SUCCESS;
    }
    let selected: Vec<&'static Experiment> = if names.is_empty() || names.iter().any(|n| n == "all")
    {
        experiments::ALL.iter().collect()
    } else {
        let mut v = Vec::new();
        for n in &names {
            match experiments::by_name(n) {
                Some(e) => v.push(e),
                None => return usage(&format!("unknown experiment {n}")),
            }
        }
        v
    };

    let harness = Harness::new(cfg);
    println!(
        "# graph-reorder reproduction | sd = {} vertices | {} cores / {} sockets | {} root(s)\n",
        cfg.scale.sd_vertices, cfg.sim.cores, cfg.sim.sockets, cfg.roots
    );
    for e in selected {
        let start = Instant::now();
        let report = (e.run)(&harness);
        println!("{report}");
        eprintln!(
            "[repro] {} done in {:.1}s",
            e.name,
            start.elapsed().as_secs_f64()
        );
    }
    ExitCode::SUCCESS
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: repro [--quick] [--scale <exp>] [--roots <n>] [--verbose] <experiment>... | all | list"
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
