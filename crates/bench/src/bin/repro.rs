//! `repro` — regenerates the tables and figures of *A Closer Look at
//! Lightweight Graph Reordering* (IISWC'19) on synthetic dataset
//! analogues (or external graphs) and a simulated memory hierarchy.
//!
//! Usage:
//!
//! ```text
//! repro [OPTIONS] <experiment>... | all | list
//!
//! Options:
//!   --quick              tiny graphs (CI smoke test)
//!   --scale <exp>        sd dataset gets 2^exp vertices (default 17)
//!   --roots <n>          roots per root-dependent app run (default 2)
//!   --techniques <list>  comma-separated technique specs (dbg,sort,rcb:4,...)
//!   --apps <list>        comma-separated app specs (pr,sssp,...)
//!   --datasets <list>    comma-separated dataset specs
//!                        (sd,kr:sd=15,file:/g.el,lgr:/g.lgr,...)
//!   --dataset-cache <dir> persist/reload built graphs as binary CSRs
//!   --sim <knobs>        simulator geometry (cores=8,sockets=2,...)
//!   --cache-bytes <n>    per-cache resident budget (k/m/g suffixes);
//!                        omit for unbounded in-memory caches
//!   --cache-stats        print per-cache hit/miss/eviction/resident
//!                        counters to stderr after the run
//!   --list               print every experiment/technique/app/dataset
//!                        name and spec grammar, then exit
//!   --verbose            progress logging to stderr
//! ```
//!
//! Unknown experiment, technique, app, or dataset names exit with
//! code 2 and list the valid names; malformed spec values (e.g.
//! `kr:sd=abc`) exit 1 like other bad flags.

use std::process::ExitCode;
use std::time::Instant;

use lgr_bench::experiments::{self, Experiment};
use lgr_bench::{AppSpec, DatasetSpec, Session, SessionConfig, SpecError, TechniqueSpec};
use lgr_cachesim::SimConfig;
use lgr_engine::{BUILTIN_DATASETS, BUILTIN_TECHNIQUES, DATASET_SPEC_FORMS};

/// Exit code for unknown experiment/technique/app/dataset names
/// (distinct from 1, which covers malformed flags).
const EXIT_UNKNOWN_NAME: u8 = 2;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Collect flags first, then build the config, so the outcome does
    // not depend on argument order (`--roots 4 --quick` must not have
    // `--quick` clobber the roots override).
    let mut quick = false;
    let mut verbose = false;
    let mut list = false;
    let mut scale_exp: Option<u32> = None;
    let mut roots: Option<usize> = None;
    let mut techniques: Option<Vec<TechniqueSpec>> = None;
    let mut apps: Option<Vec<AppSpec>> = None;
    let mut datasets: Option<Vec<DatasetSpec>> = None;
    let mut dataset_cache: Option<std::path::PathBuf> = None;
    let mut sim: Option<SimConfig> = None;
    let mut cache_bytes: Option<u64> = None;
    let mut cache_stats = false;
    let mut names: Vec<String> = Vec::new();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--verbose" | "-v" => verbose = true,
            "--list" => list = true,
            "--scale" => match iter.next().and_then(|s| s.parse::<u32>().ok()) {
                Some(exp) if (8..=24).contains(&exp) => scale_exp = Some(exp),
                _ => return usage("--scale needs an exponent in 8..=24"),
            },
            "--roots" => match iter.next().and_then(|s| s.parse::<usize>().ok()) {
                Some(n) if n >= 1 => roots = Some(n),
                _ => return usage("--roots needs a positive integer"),
            },
            "--techniques" => match iter.next() {
                Some(list) => match parse_list::<TechniqueSpec>(&list) {
                    Ok(specs) => techniques = Some(specs),
                    Err(e) => return spec_error(e),
                },
                None => return usage("--techniques needs a comma-separated list"),
            },
            "--apps" => match iter.next() {
                Some(list) => match parse_list::<AppSpec>(&list) {
                    Ok(specs) => apps = Some(specs),
                    Err(e) => return spec_error(e),
                },
                None => return usage("--apps needs a comma-separated list"),
            },
            "--datasets" => match iter.next() {
                Some(list) => match parse_list::<DatasetSpec>(&list) {
                    Ok(specs) => datasets = Some(specs),
                    Err(e) => return spec_error(e),
                },
                None => return usage("--datasets needs a comma-separated list"),
            },
            "--dataset-cache" => match iter.next() {
                Some(dir) if !dir.is_empty() => dataset_cache = Some(dir.into()),
                _ => return usage("--dataset-cache needs a directory"),
            },
            "--sim" => match iter.next().map(|s| s.parse::<SimConfig>()) {
                Some(Ok(parsed)) => sim = Some(parsed),
                Some(Err(e)) => return usage(&e.to_string()),
                None => return usage("--sim needs a knob list (cores=8,sockets=2,...)"),
            },
            "--cache-bytes" => match iter.next().as_deref().map(parse_bytes) {
                Some(Ok(n)) if n >= 1 => cache_bytes = Some(n),
                _ => return usage("--cache-bytes needs a positive size (e.g. 16m, 4096k, 1g)"),
            },
            "--cache-stats" => cache_stats = true,
            "--help" | "-h" => return usage(""),
            other if other.starts_with('-') => return usage(&format!("unknown option {other}")),
            other => names.push(other.to_owned()),
        }
    }
    if list {
        print_catalog();
        return ExitCode::SUCCESS;
    }
    let mut cfg = if quick {
        SessionConfig::quick()
    } else {
        SessionConfig::default()
    };
    if let Some(exp) = scale_exp {
        cfg = cfg.with_scale_exp(exp);
    }
    if let Some(n) = roots {
        cfg.roots = n;
    }
    if let Some(s) = sim {
        cfg.sim = s;
    }
    cfg.cache_bytes = cache_bytes;
    cfg.verbose = verbose;
    cfg.techniques = techniques;
    cfg.apps = apps;
    cfg.datasets = datasets;
    cfg.dataset_cache = dataset_cache;

    if names.iter().any(|n| n == "list") {
        for e in experiments::ALL {
            println!("{:<8} {}", e.name, e.description);
        }
        return ExitCode::SUCCESS;
    }
    let selected: Vec<&'static Experiment> = if names.is_empty() || names.iter().any(|n| n == "all")
    {
        experiments::ALL.iter().collect()
    } else {
        let mut v = Vec::new();
        for n in &names {
            match experiments::by_name(n) {
                Some(e) => v.push(e),
                None => {
                    let valid: Vec<&str> = experiments::ALL.iter().map(|e| e.name).collect();
                    return unknown_name(&format!(
                        "unknown experiment `{n}`; valid: {}",
                        valid.join(", ")
                    ));
                }
            }
        }
        v
    };

    println!(
        "# graph-reorder reproduction | sd = {} vertices | {} cores / {} sockets | {} root(s)\n",
        cfg.scale.sd_vertices, cfg.sim.cores, cfg.sim.sockets, cfg.roots
    );
    let session = Session::new(cfg);
    // Materialize the file-backed datasets up front so a missing or
    // malformed file is one clean CLI error, not a mid-experiment
    // panic. Synthetic specs cannot fail and are built lazily by
    // whichever experiments actually use them.
    if let Some(selection) = session.config().datasets.clone() {
        for ds in selection.iter().filter(|d| d.is_file_backed()) {
            if let Err(e) = session.try_graph(ds) {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    for e in selected {
        let start = Instant::now();
        let report = (e.run)(&session);
        println!("{report}");
        eprintln!(
            "[repro] {} done in {:.1}s",
            e.name,
            start.elapsed().as_secs_f64()
        );
    }
    if cache_stats {
        // Stderr, like the progress lines: stdout stays the
        // experiment tables and nothing else.
        eprint!("{}", session.cache_stats());
    }
    ExitCode::SUCCESS
}

/// Parses a byte size with an optional binary suffix: `4096`,
/// `4096k`, `16m`, `1g` (case-insensitive).
fn parse_bytes(s: &str) -> Result<u64, String> {
    let s = s.trim();
    let (digits, mult) = match s.chars().last().map(|c| c.to_ascii_lowercase()) {
        Some('k') => (&s[..s.len() - 1], 1u64 << 10),
        Some('m') => (&s[..s.len() - 1], 1 << 20),
        Some('g') => (&s[..s.len() - 1], 1 << 30),
        _ => (s, 1),
    };
    digits
        .parse::<u64>()
        .ok()
        .and_then(|n| n.checked_mul(mult))
        .ok_or_else(|| format!("not a byte size: `{s}`"))
}

/// `--list`: every name and spec grammar in one place (they otherwise
/// only appear in error paths).
fn print_catalog() {
    println!("experiments:");
    for e in experiments::ALL {
        println!("  {:<8} {}", e.name, e.description);
    }
    println!("  all      every experiment, in paper order");
    println!("\ntechniques (--techniques, `+` composes stages):");
    println!("  names:   {}", BUILTIN_TECHNIQUES.join(", "));
    println!("  grammar: dbg[:groups=<n>]  rv[:seed=<n>]  rcb:<blocks>[:seed=<n>]");
    println!("  e.g.:    --techniques dbg:groups=4,rcb:3,gorder+dbg");
    println!("\napps (--apps):");
    println!("  names:   bc, sssp, pr, prd, radii");
    println!("  grammar: pr[:iters=<n>]  prd[:iters=<n>]  sssp[:roots=<n>]  bc[:roots=<n>]");
    println!("           radii[:rounds=<n>][:sources=<n>]");
    println!("\ndatasets (--datasets):");
    println!(
        "  names:   {} (aliases: kron=kr, uniform=uni)",
        BUILTIN_DATASETS.join(", ")
    );
    println!("  grammar: <name>[:sd=<exp>][:seed=<n>]   (sd gets 2^exp vertices)");
    for form in DATASET_SPEC_FORMS {
        println!("           {form}");
    }
    println!("  e.g.:    --datasets sd,kr:sd=15,file:/data/web.el,lgr:/data/web.lgr");
    println!("\ncache:     --dataset-cache <dir> persists built graphs as .lgr binary CSRs");
    println!("           keyed by spec + scale; later runs reload instead of regenerating");
}

/// Parses a comma-separated spec list, surfacing the spec layer's
/// error (which names the offending token and the valid names).
fn parse_list<T: std::str::FromStr<Err = SpecError>>(list: &str) -> Result<Vec<T>, SpecError> {
    list.split(',').map(|s| s.trim().parse::<T>()).collect()
}

/// Unknown *names* exit 2; malformed values/parameters are flag
/// errors and exit 1 like every other bad flag.
fn spec_error(err: SpecError) -> ExitCode {
    match err {
        SpecError::UnknownTechnique { .. }
        | SpecError::UnknownApp { .. }
        | SpecError::UnknownDataset { .. } => unknown_name(&err.to_string()),
        _ => usage(&err.to_string()),
    }
}

fn unknown_name(err: &str) -> ExitCode {
    eprintln!("error: {err}");
    ExitCode::from(EXIT_UNKNOWN_NAME)
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: repro [--quick] [--scale <exp>] [--roots <n>] [--techniques <list>] [--apps <list>] [--datasets <list>] [--dataset-cache <dir>] [--sim <knobs>] [--cache-bytes <n[k|m|g]>] [--cache-stats] [--list] [--verbose] <experiment>... | all | list"
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
