//! Safe data-parallel operations built on [`Pool::broadcast`].

use std::ops::Range;

use crate::{even_ranges, Pool, SyncSlice};

/// Runs `f(chunk_index, range, &mut data[range])` for every range, in
/// parallel. Ranges are assigned to workers round-robin (`ranges[k]`
/// goes to worker `k % threads`), so callers may pass more ranges than
/// workers.
///
/// # Panics
///
/// Panics if the ranges are not sorted, non-overlapping, and within
/// `data` bounds.
pub fn par_chunks_mut<T, F>(pool: &Pool, data: &mut [T], ranges: &[Range<usize>], f: F)
where
    T: Send,
    F: Fn(usize, Range<usize>, &mut [T]) + Sync,
{
    assert!(
        ranges.windows(2).all(|w| w[0].end <= w[1].start),
        "chunk ranges must be sorted and non-overlapping"
    );
    if let Some(last) = ranges.last() {
        assert!(
            last.end <= data.len(),
            "chunk range {last:?} exceeds slice length {}",
            data.len()
        );
    }
    let view = SyncSlice::new(data);
    let threads = pool.threads();
    pool.broadcast(|w| {
        for k in (w..ranges.len()).step_by(threads) {
            let range = ranges[k].clone();
            // SAFETY: the ranges were checked non-overlapping above
            // and each index k is visited by exactly one worker, so
            // every subslice is accessed by one thread only.
            let chunk = unsafe { view.slice_mut(range.clone()) };
            f(k, range, chunk);
        }
    });
}

/// Fills `out[i] = f(i)` in parallel over even chunks.
///
/// # Example
///
/// ```
/// use lgr_parallel::{par_fill, Pool};
///
/// let pool = Pool::new(4);
/// let mut squares = vec![0usize; 100];
/// par_fill(&pool, &mut squares, |i| i * i);
/// assert_eq!(squares[9], 81);
/// ```
pub fn par_fill<T, F>(pool: &Pool, out: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let ranges = even_ranges(out.len(), pool.threads());
    par_fill_ranges(pool, out, &ranges, f);
}

/// Fills `out[i] = f(i)` in parallel, dividing work by the given
/// ranges (e.g. [`crate::edge_balanced_ranges`] for degree-skewed
/// per-vertex work).
///
/// # Panics
///
/// Panics if the ranges are not sorted, non-overlapping, and within
/// `out` bounds.
pub fn par_fill_ranges<T, F>(pool: &Pool, out: &mut [T], ranges: &[Range<usize>], f: F)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    par_chunks_mut(pool, out, ranges, |_, range, chunk| {
        for (slot, i) in chunk.iter_mut().zip(range) {
            *slot = f(i);
        }
    });
}

/// Stable scatter offsets: the result of a per-worker histogram merged
/// by prefix sum, as produced by [`stable_offsets`].
///
/// For a counting sort over `bins` keys where worker `w` owns the
/// `w`-th contiguous input range, `row(w)[b]` is the first output slot
/// for worker `w`'s items with key `b`. Laying items out at
/// `row(w)[b]`, incrementing per item, yields the *stable* order:
/// grouped by bin, original input order within each bin.
#[derive(Debug, Clone)]
pub struct StableOffsets {
    workers: usize,
    bins: usize,
    /// Flat `workers × bins` start-offset matrix, row per worker.
    offsets: Vec<usize>,
    /// `bin_starts[b]` is the first output slot of bin `b`; the extra
    /// last entry equals the item total (a ready-made CSR index).
    bin_starts: Vec<usize>,
}

impl StableOffsets {
    /// Number of workers (histogram rows).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Number of bins (histogram columns).
    pub fn bins(&self) -> usize {
        self.bins
    }

    /// Worker `w`'s start offset per bin. Clone it into a local cursor
    /// and post-increment per scattered item.
    pub fn row(&self, worker: usize) -> &[usize] {
        &self.offsets[worker * self.bins..(worker + 1) * self.bins]
    }

    /// Exclusive prefix sum of bin sizes, length `bins + 1` — exactly
    /// a CSR index array when bins are vertices.
    pub fn bin_starts(&self) -> &[usize] {
        &self.bin_starts
    }

    /// Consumes `self`, returning the bin-starts vector without
    /// copying.
    pub fn into_bin_starts(self) -> Vec<usize> {
        self.bin_starts
    }

    /// Total number of items counted.
    pub fn total(&self) -> usize {
        *self.bin_starts.last().expect("bin_starts is never empty")
    }
}

/// Per-worker histogram + prefix-sum merge: counts `bin_of(i)` for
/// every item `i` of every range in parallel, then merges the
/// per-worker histograms into stable scatter offsets (bin-major, then
/// worker-major — i.e. original input order within each bin, because
/// `ranges[w]` must be the `w`-th *contiguous* piece of the input).
///
/// Both the counting pass and the (column-strided) prefix merge run on
/// the pool; only the `O(parts)` chunk-total prefix is sequential.
///
/// # Safety argument for the internal `unsafe`
///
/// The prefix merge writes through [`SyncSlice`] without locks: each
/// pool task owns a disjoint range of bins, and every cell it touches
/// (`w * bins + b`, plus `bin_starts[b]`) is indexed by a bin `b`
/// from its own range — tasks therefore never alias a cell, and both
/// borrows end before the enclosing scope returns the vectors.
///
/// # Example
///
/// ```
/// use lgr_parallel::{even_ranges, stable_offsets, Pool};
///
/// let keys = [1usize, 0, 1, 1, 0];
/// let pool = Pool::new(2);
/// let ranges = even_ranges(keys.len(), pool.threads());
/// let offs = stable_offsets(&pool, &ranges, 2, |i| keys[i]);
/// assert_eq!(offs.bin_starts(), &[0, 2, 5]);
/// // Worker 0 owns items 0..3 (keys 1, 0, 1): its first key-0 item
/// // lands at slot 0, its first key-1 item at slot 2.
/// assert_eq!(offs.row(0), &[0, 2]);
/// // Worker 1 owns items 3..5 (keys 1, 0): after worker 0's one
/// // key-0 item and two key-1 items.
/// assert_eq!(offs.row(1), &[1, 4]);
/// ```
///
/// # Panics
///
/// Panics if `bin_of` returns a value `>= bins`.
pub fn stable_offsets<F>(
    pool: &Pool,
    ranges: &[Range<usize>],
    bins: usize,
    bin_of: F,
) -> StableOffsets
where
    F: Fn(usize) -> usize + Sync,
{
    let workers = ranges.len();
    let mut counts = vec![0usize; workers * bins];
    // Pass 1: per-worker histograms, each worker filling its own row.
    let rows: Vec<Range<usize>> = (0..workers).map(|w| w * bins..(w + 1) * bins).collect();
    par_chunks_mut(pool, &mut counts, &rows, |w, _, row| {
        for i in ranges[w].clone() {
            row[bin_of(i)] += 1;
        }
    });
    // Pass 2: column-major exclusive prefix sum, parallel over bin
    // chunks. Each chunk first accumulates relative offsets...
    let mut offsets = counts;
    let mut bin_starts = vec![0usize; bins + 1];
    let bin_ranges = even_ranges(bins, pool.threads());
    let mut chunk_totals = vec![0usize; bin_ranges.len()];
    {
        let off = SyncSlice::new(&mut offsets);
        let starts = SyncSlice::new(&mut bin_starts);
        par_fill(pool, &mut chunk_totals, |j| {
            let mut acc = 0usize;
            for b in bin_ranges[j].clone() {
                // SAFETY: bin chunk j touches only columns in its
                // (disjoint) bin range.
                unsafe { starts.write(b, acc) };
                for w in 0..workers {
                    let idx = w * bins + b;
                    // SAFETY: same disjoint-columns argument.
                    let c = unsafe { off.read(idx) };
                    // SAFETY: same disjoint-columns argument.
                    unsafe { off.write(idx, acc) };
                    acc += c;
                }
            }
            acc
        });
    }
    // ...then a sequential O(parts) prefix over chunk totals...
    let mut bases = vec![0usize; bin_ranges.len()];
    let mut acc = 0usize;
    for (base, &t) in bases.iter_mut().zip(&chunk_totals) {
        *base = acc;
        acc += t;
    }
    let total = acc;
    // ...and a parallel pass rebasing every chunk.
    {
        let off = SyncSlice::new(&mut offsets);
        let starts = SyncSlice::new(&mut bin_starts);
        let bases = &bases;
        let bin_ranges_ref = &bin_ranges;
        pool.broadcast(|w| {
            for j in (w..bin_ranges_ref.len()).step_by(pool.threads()) {
                let base = bases[j];
                if base == 0 {
                    continue;
                }
                for b in bin_ranges_ref[j].clone() {
                    // SAFETY: disjoint bin columns per chunk j, and
                    // each j is visited by exactly one worker.
                    unsafe { starts.write(b, starts.read(b) + base) };
                    for wk in 0..workers {
                        let idx = wk * bins + b;
                        // SAFETY: same disjoint-columns-per-chunk
                        // argument as the rebase above.
                        unsafe { off.write(idx, off.read(idx) + base) };
                    }
                }
            }
        });
    }
    bin_starts[bins] = total;
    StableOffsets {
        workers,
        bins,
        offsets,
        bin_starts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_fill_matches_sequential() {
        for threads in [1usize, 2, 3, 8] {
            let pool = Pool::new(threads);
            let mut out = vec![0u64; 1000];
            par_fill(&pool, &mut out, |i| (i as u64).wrapping_mul(0x9E37));
            assert!(out
                .iter()
                .enumerate()
                .all(|(i, &v)| v == (i as u64).wrapping_mul(0x9E37)));
        }
    }

    #[test]
    fn par_chunks_mut_round_robins_excess_ranges() {
        let pool = Pool::new(2);
        let mut data = vec![0usize; 10];
        let ranges: Vec<Range<usize>> = (0..5).map(|i| i * 2..i * 2 + 2).collect();
        par_chunks_mut(&pool, &mut data, &ranges, |k, range, chunk| {
            for (slot, i) in chunk.iter_mut().zip(range) {
                *slot = k * 100 + i;
            }
        });
        assert_eq!(data[0], 0);
        assert_eq!(data[9], 409);
    }

    #[test]
    #[should_panic(expected = "non-overlapping")]
    fn par_chunks_mut_rejects_overlap() {
        let pool = Pool::new(2);
        let mut data = vec![0usize; 10];
        par_chunks_mut(&pool, &mut data, &[0..5, 4..10], |_, _, _| {});
    }

    /// Reference sequential stable counting-sort offsets.
    fn reference_offsets(keys: &[usize], ranges: &[Range<usize>], bins: usize) -> Vec<usize> {
        let workers = ranges.len();
        let mut counts = vec![0usize; workers * bins];
        for (w, r) in ranges.iter().enumerate() {
            for i in r.clone() {
                counts[w * bins + keys[i]] += 1;
            }
        }
        let mut offsets = vec![0usize; workers * bins];
        let mut acc = 0usize;
        for b in 0..bins {
            for w in 0..workers {
                offsets[w * bins + b] = acc;
                acc += counts[w * bins + b];
            }
        }
        offsets
    }

    #[test]
    fn stable_offsets_matches_reference() {
        let keys: Vec<usize> = (0..500).map(|i| (i * 7 + i / 13) % 17).collect();
        for threads in [1usize, 2, 3, 8] {
            let pool = Pool::new(threads);
            let ranges = even_ranges(keys.len(), pool.threads());
            let offs = stable_offsets(&pool, &ranges, 17, |i| keys[i]);
            let expect = reference_offsets(&keys, &ranges, 17);
            for w in 0..pool.threads() {
                assert_eq!(offs.row(w), &expect[w * 17..(w + 1) * 17], "worker {w}");
            }
            assert_eq!(offs.total(), keys.len());
            // bin_starts is the exclusive prefix of bin sizes.
            let mut sizes = [0usize; 17];
            for &k in &keys {
                sizes[k] += 1;
            }
            let mut acc = 0;
            for (b, &s) in sizes.iter().enumerate() {
                assert_eq!(offs.bin_starts()[b], acc);
                acc += s;
            }
            assert_eq!(offs.bin_starts()[17], acc);
        }
    }

    #[test]
    fn stable_offsets_scatter_is_stable() {
        // Scatter items through the offsets and verify bin-major,
        // input-order-within-bin layout.
        let keys = [2usize, 0, 2, 1, 0, 2, 2, 1];
        let pool = Pool::new(3);
        let ranges = even_ranges(keys.len(), pool.threads());
        let offs = stable_offsets(&pool, &ranges, 3, |i| keys[i]);
        let mut out = vec![usize::MAX; keys.len()];
        for (w, r) in ranges.iter().enumerate() {
            let mut cursor = offs.row(w).to_vec();
            for i in r.clone() {
                out[cursor[keys[i]]] = i;
                cursor[keys[i]] += 1;
            }
        }
        // Stable counting sort of indices by key.
        let mut expect: Vec<usize> = (0..keys.len()).collect();
        expect.sort_by_key(|&i| keys[i]);
        assert_eq!(out, expect);
    }

    #[test]
    fn stable_offsets_empty_input() {
        let pool = Pool::new(4);
        let ranges = even_ranges(0, pool.threads());
        let offs = stable_offsets(&pool, &ranges, 5, |_| unreachable!());
        assert_eq!(offs.total(), 0);
        assert_eq!(offs.bin_starts(), &[0; 6]);
    }

    #[test]
    fn stable_offsets_zero_bins() {
        let pool = Pool::new(2);
        let ranges = even_ranges(0, pool.threads());
        let offs = stable_offsets(&pool, &ranges, 0, |_| unreachable!());
        assert_eq!(offs.total(), 0);
        assert_eq!(offs.bin_starts(), &[0]);
    }
}
