//! Work division: even and edge-balanced range splitting.

use std::ops::Range;

/// Splits `0..n` into exactly `parts` contiguous ranges of
/// near-equal *length* (trailing ranges may be empty). `parts` is
/// clamped to at least 1.
///
/// Index the result directly by worker index: `ranges[w]` is worker
/// `w`'s slice of the iteration space.
///
/// # Example
///
/// ```
/// use lgr_parallel::even_ranges;
///
/// assert_eq!(even_ranges(10, 3), vec![0..4, 4..8, 8..10]);
/// assert_eq!(even_ranges(1, 3), vec![0..1, 1..1, 1..1]);
/// ```
pub fn even_ranges(n: usize, parts: usize) -> Vec<Range<usize>> {
    let parts = parts.max(1);
    let chunk = n.div_ceil(parts);
    (0..parts)
        .map(|i| (i * chunk).min(n)..((i + 1) * chunk).min(n))
        .collect()
}

/// Splits the vertex range `0..offsets.len()-1` into exactly `parts`
/// contiguous ranges of near-equal *edge mass*, where `offsets` is a
/// cumulative edge-offset array in CSR form (`offsets[v+1] -
/// offsets[v]` is vertex `v`'s degree).
///
/// Contiguous equal-*vertex* splits are pathological on hub-first
/// orderings (Sort and DBG place every heavy vertex in worker 0's
/// chunk); balancing on edges instead keeps pull-mode iteration
/// latency flat across workers. Falls back to [`even_ranges`] when the
/// graph has no edges.
///
/// # Example
///
/// ```
/// use lgr_parallel::edge_balanced_ranges;
///
/// // Four vertices with degrees [6, 1, 1, 0]: an even split would
/// // give 0..2 and 2..4 (7 edges vs 1); the edge-balanced split cuts
/// // after the hub.
/// let ranges = edge_balanced_ranges(&[0, 6, 7, 8, 8], 2);
/// assert_eq!(ranges, vec![0..1, 1..4]);
/// ```
///
/// # Panics
///
/// Panics if `offsets` is empty (a CSR offset array always has at
/// least the single entry `[0]`).
pub fn edge_balanced_ranges(offsets: &[usize], parts: usize) -> Vec<Range<usize>> {
    assert!(
        !offsets.is_empty(),
        "offsets must hold at least one entry (got none)"
    );
    let parts = parts.max(1);
    let n = offsets.len() - 1;
    let total = offsets[n] - offsets[0];
    if total == 0 {
        return even_ranges(n, parts);
    }
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0usize;
    for i in 1..=parts {
        let end = if i == parts {
            // The last range absorbs trailing zero-degree vertices.
            n
        } else {
            let target = offsets[0] + ((total as u128 * i as u128) / parts as u128) as usize;
            // First vertex boundary whose cumulative offset reaches
            // the target, clamped to stay monotone.
            offsets.partition_point(|&o| o < target).clamp(start, n)
        };
        ranges.push(start..end);
        start = end;
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;

    fn covers(ranges: &[Range<usize>], n: usize) {
        let mut next = 0usize;
        for r in ranges {
            assert_eq!(r.start, next, "ranges must tile without gaps");
            assert!(r.start <= r.end);
            next = r.end;
        }
        assert_eq!(next, n, "ranges must cover 0..{n}");
    }

    #[test]
    fn even_ranges_tile_the_space() {
        for (n, t) in [(10usize, 3usize), (1, 8), (0, 4), (100, 7), (7, 7), (5, 9)] {
            let rs = even_ranges(n, t);
            assert_eq!(rs.len(), t.max(1));
            covers(&rs, n);
        }
    }

    #[test]
    fn edge_balanced_tiles_and_balances() {
        // Uniform degrees: behaves like an even split.
        let offsets: Vec<usize> = (0..=8).map(|v| v * 3).collect();
        let rs = edge_balanced_ranges(&offsets, 4);
        covers(&rs, 8);
        assert_eq!(rs, vec![0..2, 2..4, 4..6, 6..8]);
    }

    #[test]
    fn edge_balanced_isolates_hubs() {
        // Hub-first ordering: vertex 0 holds 100 of 104 edges.
        let offsets = [0usize, 100, 101, 102, 103, 104];
        let rs = edge_balanced_ranges(&offsets, 4);
        covers(&rs, 5);
        // The hub gets a worker to itself.
        assert_eq!(rs[0], 0..1);
        // No other worker's edge mass exceeds the remainder.
        for r in &rs[1..] {
            assert!(offsets[r.end] - offsets[r.start] <= 4);
        }
    }

    #[test]
    fn edge_balanced_empty_graph_falls_back() {
        let rs = edge_balanced_ranges(&[0, 0, 0, 0], 2);
        covers(&rs, 3);
    }

    #[test]
    fn edge_balanced_zero_vertices() {
        let rs = edge_balanced_ranges(&[0], 3);
        covers(&rs, 0);
    }

    #[test]
    fn edge_balanced_trailing_isolated_vertices() {
        // Degrees [4, 4, 0, 0]: the zero-degree tail still gets
        // assigned (to the last range).
        let rs = edge_balanced_ranges(&[0, 4, 8, 8, 8], 2);
        covers(&rs, 4);
        assert_eq!(rs[0], 0..1);
        assert_eq!(rs[1], 1..4);
    }
}
