//! Shared-slice escape hatch for disjoint scatter writes.

use std::marker::PhantomData;
use std::ops::Range;

/// A copyable, thread-shareable view of a mutable slice for kernels
/// whose writes are disjoint *by construction* rather than by
/// contiguous chunks (counting-sort scatters, column-strided prefix
/// merges).
///
/// This is the one unsafe primitive of the crate: all accessors are
/// `unsafe fn`s whose contract is that no two concurrent accesses
/// overlap. Prefer the safe wrappers ([`crate::par_fill`],
/// [`crate::par_chunks_mut`]) whenever the write pattern is chunked.
///
/// # Example
///
/// ```
/// use lgr_parallel::{even_ranges, Pool, SyncSlice};
///
/// let pool = Pool::new(4);
/// let mut out = vec![0usize; 16];
/// let ranges = even_ranges(out.len(), pool.threads());
/// let view = SyncSlice::new(&mut out);
/// pool.broadcast(|w| {
///     for i in ranges[w].clone() {
///         // SAFETY: the ranges are disjoint, so no slot is written
///         // by two workers.
///         unsafe { view.write(i, i * i) };
///     }
/// });
/// assert_eq!(out[5], 25);
/// ```
pub struct SyncSlice<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

impl<T> Clone for SyncSlice<'_, T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for SyncSlice<'_, T> {}

impl<T> std::fmt::Debug for SyncSlice<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SyncSlice").field("len", &self.len).finish()
    }
}

// SAFETY: a `SyncSlice` is a pointer plus a length; sending or sharing
// it across threads is sound because every access is `unsafe` and the
// accessor's contract (disjointness) is what actually prevents data
// races. `T: Send` is required because remote threads may drop-in
// replace and otherwise fully own individual elements.
unsafe impl<T: Send> Send for SyncSlice<'_, T> {}
unsafe impl<T: Send> Sync for SyncSlice<'_, T> {}

impl<'a, T> SyncSlice<'a, T> {
    /// Wraps a mutable slice. The borrow keeps the underlying storage
    /// exclusively reserved for the lifetime of the view.
    pub fn new(slice: &'a mut [T]) -> Self {
        SyncSlice {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: PhantomData,
        }
    }

    /// Length of the underlying slice.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the underlying slice is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Writes `value` to slot `index`.
    ///
    /// # Safety
    ///
    /// `index` must be in bounds, and no other thread may concurrently
    /// read or write slot `index`.
    #[inline]
    pub unsafe fn write(self, index: usize, value: T) {
        debug_assert!(index < self.len);
        *self.ptr.add(index) = value;
    }

    /// Reads slot `index`.
    ///
    /// # Safety
    ///
    /// `index` must be in bounds, and no other thread may concurrently
    /// write slot `index`.
    #[inline]
    pub unsafe fn read(self, index: usize) -> T
    where
        T: Copy,
    {
        debug_assert!(index < self.len);
        *self.ptr.add(index)
    }

    /// Reborrows `range` as a mutable subslice.
    ///
    /// # Safety
    ///
    /// `range` must be in bounds, and no other thread may concurrently
    /// access any slot in `range` while the returned slice is alive.
    #[inline]
    pub unsafe fn slice_mut(self, range: Range<usize>) -> &'a mut [T] {
        debug_assert!(range.start <= range.end && range.end <= self.len);
        std::slice::from_raw_parts_mut(self.ptr.add(range.start), range.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Pool;

    #[test]
    fn disjoint_parallel_writes() {
        let pool = Pool::new(4);
        let mut data = vec![0u32; 100];
        let view = SyncSlice::new(&mut data);
        pool.broadcast(|w| {
            // Strided ownership: worker w owns indices ≡ w (mod 4).
            let mut i = w;
            while i < view.len() {
                // SAFETY: residue classes are disjoint across workers.
                unsafe { view.write(i, i as u32 * 2) };
                i += 4;
            }
        });
        assert!(data.iter().enumerate().all(|(i, &v)| v == i as u32 * 2));
    }

    #[test]
    fn subslice_sorting() {
        let pool = Pool::new(2);
        let mut data = vec![5u32, 3, 1, 9, 8, 2];
        let view = SyncSlice::new(&mut data);
        pool.broadcast(|w| {
            let range = if w == 0 { 0..3 } else { 3..6 };
            // SAFETY: the two halves are disjoint.
            let half = unsafe { view.slice_mut(range) };
            half.sort_unstable();
        });
        assert_eq!(data, vec![1, 3, 5, 2, 8, 9]);
    }
}
