//! Pooled shared-memory parallelism for the graph-reorder workspace.
//!
//! The build environment has no registry access, so this crate is the
//! workspace's registry-free analogue of `rayon` (in the same spirit
//! as the API-subset stand-ins under `shims/`): a [`Pool`] of
//! persistent worker threads — spawned once, reused across arbitrarily
//! many operations — plus the handful of data-parallel primitives the
//! reorder→rebuild→run pipeline needs:
//!
//! * [`Pool::broadcast`] — run one closure on every worker, blocking
//!   until all finish (the base primitive everything else builds on);
//! * [`par_fill`] / [`par_fill_ranges`] / [`par_chunks_mut`] — safe
//!   chunked for-each over slices;
//! * [`stable_offsets`] — per-worker histogram + prefix-sum merge, the
//!   core of stable parallel counting sorts (CSR construction, DBG
//!   grouping);
//! * [`even_ranges`] / [`edge_balanced_ranges`] — work division,
//!   including the degree-skew-aware splitter that keeps hub-first
//!   orderings from starving all but one worker;
//! * [`SyncSlice`] — the unsafe escape hatch for scatter kernels whose
//!   writes are disjoint by construction but not by contiguous chunks.
//!
//! # Determinism
//!
//! Every primitive here is deterministic: results are pure functions
//! of the inputs, independent of the worker count and of scheduling.
//! Parallel counting sorts preserve stability by giving each worker a
//! contiguous input range and merging histograms in worker order, so
//! `threads = N` produces bit-identical output to `threads = 1`.
//!
//! # Thread-count knob
//!
//! [`Pool::with_default_threads`] sizes the pool from the
//! `LGR_THREADS` environment variable, falling back to the machine's
//! available parallelism. CI runs the test suite a second time with
//! `LGR_THREADS=2` to exercise the pooled paths under contention.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod ops;
mod pool;
mod shared;
mod split;

pub use ops::{par_chunks_mut, par_fill, par_fill_ranges, stable_offsets, StableOffsets};
pub use pool::Pool;
pub use shared::SyncSlice;
pub use split::{edge_balanced_ranges, even_ranges};
