//! The persistent worker pool.
//!
//! All synchronization goes through `lgr-sync` wrappers: the pool's
//! locks carry ranks in the workspace's global lock order (`pool.gate`
//! = 300, `pool.state` = 310, both above the engine's cache locks), and
//! under the `model` feature the whole broadcast handshake runs inside
//! the deterministic interleaving explorer (see `tests/model.rs`).

use std::num::NonZeroUsize;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;

use lgr_sync::thread::JoinHandle;
use lgr_sync::{rank, Condvar, Mutex, Rank};

/// Broadcast serialization comes before epoch bookkeeping.
const GATE_RANK: Rank = rank(300, "pool.gate");
/// Epoch/job handshake state; acquired while holding `pool.gate`.
const STATE_RANK: Rank = rank(310, "pool.state");

/// A type-erased pointer to the closure of the broadcast in flight.
///
/// `data` points at a caller-stack `F: Fn(usize) + Sync`; `call`
/// downcasts and invokes it.
#[derive(Clone, Copy)]
struct Job {
    data: *const (),
    // SAFETY: contract of `call` — it must only be invoked with the
    // `data` pointer above, which is the `&F` it was monomorphized
    // for (upheld by construction in `Pool::broadcast`).
    call: unsafe fn(*const (), usize),
}

// SAFETY: the closure behind `data` is `Sync` (enforced by the bounds
// on `Pool::broadcast`) and outlives every worker's use of it, because
// `broadcast` blocks until all workers have signalled completion
// before the stack frame owning the closure can unwind or return.
unsafe impl Send for Job {}

struct State {
    /// Bumped once per broadcast; workers run one job per new epoch.
    epoch: u64,
    /// The job of the current epoch, cleared once the epoch completes.
    job: Option<Job>,
    /// Spawned workers that have not yet finished the current epoch.
    remaining: usize,
    /// The first panic payload a spawned worker produced this epoch —
    /// preserved so `broadcast` can resume it with the original
    /// message instead of a generic "a worker panicked".
    panic_payload: Option<Box<dyn std::any::Any + Send>>,
    /// Set by `Drop`; workers exit at the next wakeup.
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Signalled when a new epoch starts (or at shutdown).
    work: Condvar,
    /// Signalled when the last worker finishes an epoch.
    done: Condvar,
}

/// A pool of persistent worker threads for scoped data parallelism.
///
/// Workers are spawned once at construction and reused across every
/// subsequent operation, so iterative algorithms (PageRank rounds,
/// SSSP relaxation waves) pay the thread-spawn cost zero times instead
/// of once per iteration. The calling thread participates as worker 0,
/// so `Pool::new(t)` spawns only `t - 1` OS threads and `t == 1` is a
/// true sequential fallback with no threads and no synchronization.
///
/// A pool is `Send + Sync`: one pool can back many concurrent jobs
/// (the shared-`Session` serving path hands a single pool to every
/// connection handler). Broadcasts from different threads serialize
/// through an internal gate, so concurrent jobs interleave safely at
/// data-parallel-section granularity rather than oversubscribing the
/// machine with per-job worker sets.
///
/// # Example
///
/// ```
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use lgr_parallel::Pool;
///
/// let pool = Pool::new(4);
/// let hits = AtomicUsize::new(0);
/// pool.broadcast(|worker| {
///     assert!(worker < 4);
///     hits.fetch_add(1, Ordering::Relaxed);
/// });
/// assert_eq!(hits.into_inner(), 4);
/// ```
pub struct Pool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    /// Serializes broadcasts so concurrent callers cannot interleave
    /// epoch bookkeeping.
    gate: Mutex<()>,
    threads: usize,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("threads", &self.threads)
            .finish()
    }
}

// The serving tier shares one pool across every connection thread; a
// regression that makes `Pool` thread-local fails to compile here.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Pool>();
};

impl Pool {
    /// A pool with `threads` total workers (the calling thread counts
    /// as one; `threads - 1` OS threads are spawned). `threads` is
    /// clamped to at least 1.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::ranked(
                STATE_RANK,
                State {
                    epoch: 0,
                    job: None,
                    remaining: 0,
                    panic_payload: None,
                    shutdown: false,
                },
            ),
            work: Condvar::with_label("pool.work"),
            done: Condvar::with_label("pool.done"),
        });
        let workers = (1..threads)
            .map(|index| {
                let shared = Arc::clone(&shared);
                lgr_sync::thread::Builder::new()
                    .name(format!("lgr-pool-{index}"))
                    .spawn(move || worker_loop(&shared, index))
                    .expect("spawning pool worker thread")
            })
            .collect();
        Pool {
            shared,
            workers,
            gate: Mutex::ranked(GATE_RANK, ()),
            threads,
        }
    }

    /// A pool sized by [`Pool::default_threads`].
    pub fn with_default_threads() -> Self {
        Pool::new(Self::default_threads())
    }

    /// The workspace-wide thread-count knob: the `LGR_THREADS`
    /// environment variable if set to a positive integer, otherwise
    /// the machine's available parallelism.
    pub fn default_threads() -> usize {
        std::env::var("LGR_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&t| t >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(NonZeroUsize::get)
                    .unwrap_or(1)
            })
    }

    /// Total worker count, including the calling thread.
    #[inline]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f(worker_index)` once on every worker (indices
    /// `0..threads`), blocking until all invocations complete. The
    /// calling thread runs `f(0)` itself.
    ///
    /// `f` may borrow from the caller's stack: the borrow cannot
    /// dangle because `broadcast` does not return (or unwind) until
    /// every worker has finished with it.
    ///
    /// Concurrent `broadcast` calls from different threads are
    /// serialized. Do **not** call `broadcast` from inside a job on
    /// the same pool — it deadlocks (workers cannot make progress on a
    /// nested epoch).
    ///
    /// # Panics
    ///
    /// If `f` panics on the calling thread the panic resumes here once
    /// all workers finish; if `f` panics on a spawned worker, the
    /// first worker's original payload is re-raised here after the
    /// epoch completes (as a scoped spawn's `join` would).
    ///
    /// # Safety argument for the internal `unsafe`
    ///
    /// The job handed to workers is a type-erased `*const F` into this
    /// frame; it cannot outlive `f` because `broadcast` blocks until
    /// every worker has signalled completion of this epoch, and the
    /// `gate` lock serializes epochs so no stale pointer is ever
    /// re-dispatched.
    pub fn broadcast<F: Fn(usize) + Sync>(&self, f: F) {
        if self.workers.is_empty() {
            f(0);
            return;
        }
        /// Downcasts `data` back to the concrete closure and calls it.
        ///
        /// # Safety
        /// `data` must be the `&F` installed by the enclosing
        /// `broadcast`, still alive for the duration of the call.
        unsafe fn call<F: Fn(usize)>(data: *const (), index: usize) {
            // SAFETY (of the deref): `data` is the `&F` installed by
            // the enclosing `broadcast`, which is still alive because
            // `broadcast` blocks until every worker is done with it.
            (*(data as *const F))(index)
        }
        let _serialize = self.gate.lock();
        let job = Job {
            data: (&f as *const F).cast::<()>(),
            call: call::<F>,
        };
        {
            let mut s = self.shared.state.lock();
            s.job = Some(job);
            s.epoch = s.epoch.wrapping_add(1);
            s.remaining = self.workers.len();
            s.panic_payload = None;
            self.shared.work.notify_all();
        }
        // The calling thread is worker 0. Catch a panic so we still
        // wait for the spawned workers (their job reference must not
        // outlive this frame).
        let caller = catch_unwind(AssertUnwindSafe(|| f(0)));
        let worker_panic = {
            let mut s = self.shared.state.lock();
            while s.remaining > 0 {
                s = self.shared.done.wait(s);
            }
            s.job = None;
            s.panic_payload.take()
        };
        if let Err(payload) = caller {
            resume_unwind(payload);
        }
        if let Some(payload) = worker_panic {
            // Re-raise the worker's original panic so the message and
            // location reach the caller, as a scoped spawn would.
            resume_unwind(payload);
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut s = self.shared.state.lock();
            s.shutdown = true;
            self.shared.work.notify_all();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// The spawned workers' run loop: wait for an epoch bump, run the
/// installed job, signal completion.
///
/// # Safety argument for the internal `unsafe`
///
/// The type-erased job pointer is dereferenced only between observing
/// the epoch bump and decrementing `remaining` — the window in which
/// the installing `broadcast` is still blocked, so the closure the
/// pointer aliases is guaranteed alive (it cannot outlive its frame
/// unobserved).
fn worker_loop(shared: &Shared, index: usize) {
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut s = shared.state.lock();
            loop {
                if s.shutdown {
                    return;
                }
                if s.epoch != seen_epoch {
                    seen_epoch = s.epoch;
                    break s.job.expect("epoch bumped without a job");
                }
                s = shared.work.wait(s);
            }
        };
        // SAFETY: `job` was installed by a `broadcast` that is still
        // blocked waiting for this worker's completion signal below,
        // so the closure it points to is alive.
        let result = catch_unwind(AssertUnwindSafe(|| unsafe { (job.call)(job.data, index) }));
        let mut s = shared.state.lock();
        if let Err(payload) = result {
            // Keep the first payload; later ones are usually cascades.
            s.panic_payload.get_or_insert(payload);
        }
        s.remaining -= 1;
        if s.remaining == 0 {
            shared.done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn broadcast_runs_every_worker_exactly_once() {
        for threads in [1usize, 2, 3, 8] {
            let pool = Pool::new(threads);
            let counts: Vec<AtomicUsize> = (0..threads).map(|_| AtomicUsize::new(0)).collect();
            pool.broadcast(|w| {
                counts[w].fetch_add(1, Ordering::Relaxed);
            });
            for (w, c) in counts.iter().enumerate() {
                assert_eq!(c.load(Ordering::Relaxed), 1, "worker {w} of {threads}");
            }
        }
    }

    #[test]
    fn workers_persist_across_broadcasts() {
        let pool = Pool::new(4);
        let total = AtomicUsize::new(0);
        for _ in 0..100 {
            pool.broadcast(|_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(total.into_inner(), 400);
    }

    #[test]
    fn borrows_caller_stack() {
        let pool = Pool::new(3);
        let data = [1u64, 2, 3, 4, 5, 6];
        let partials: Vec<AtomicUsize> = (0..3).map(|_| AtomicUsize::new(0)).collect();
        pool.broadcast(|w| {
            let sum: u64 = data[w * 2..w * 2 + 2].iter().sum();
            partials[w].store(sum as usize, Ordering::Relaxed);
        });
        let total: usize = partials.iter().map(|p| p.load(Ordering::Relaxed)).sum();
        assert_eq!(total, 21);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = Pool::new(0);
        assert_eq!(pool.threads(), 1);
        let ran = AtomicUsize::new(0);
        pool.broadcast(|w| {
            assert_eq!(w, 0);
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.into_inner(), 1);
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        let pool = Pool::new(4);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.broadcast(|w| {
                if w == 2 {
                    panic!("boom");
                }
            });
        }));
        let payload = result.expect_err("worker panic must surface");
        // The original payload is preserved, not a generic message.
        assert_eq!(payload.downcast_ref::<&str>(), Some(&"boom"));
        // The pool stays usable afterwards.
        let ok = AtomicUsize::new(0);
        pool.broadcast(|_| {
            ok.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ok.into_inner(), 4);
    }

    #[test]
    fn caller_panic_propagates_and_pool_survives() {
        let pool = Pool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.broadcast(|w| {
                if w == 0 {
                    panic!("caller boom");
                }
            });
        }));
        assert!(result.is_err());
        let ok = AtomicUsize::new(0);
        pool.broadcast(|_| {
            ok.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ok.into_inner(), 2);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(Pool::default_threads() >= 1);
    }

    #[test]
    fn concurrent_broadcasts_from_many_threads_serialize_correctly() {
        // The shared-session serving path: several job threads drive
        // one pool at once. Every broadcast must still run exactly
        // once per worker, with no interleaved epoch bookkeeping.
        for pool_threads in [1usize, 3] {
            let pool = Pool::new(pool_threads);
            let total = AtomicUsize::new(0);
            const CALLERS: usize = 4;
            const ROUNDS: usize = 50;
            std::thread::scope(|scope| {
                for _ in 0..CALLERS {
                    let (pool, total) = (&pool, &total);
                    scope.spawn(move || {
                        for _ in 0..ROUNDS {
                            pool.broadcast(|_| {
                                total.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                }
            });
            assert_eq!(
                total.into_inner(),
                CALLERS * ROUNDS * pool_threads,
                "{pool_threads} pool threads"
            );
        }
    }

    #[test]
    fn a_panic_under_contention_does_not_poison_other_callers() {
        let pool = Pool::new(2);
        std::thread::scope(|scope| {
            let ok = scope.spawn(|| {
                for _ in 0..100 {
                    pool.broadcast(|_| {});
                }
            });
            let panicky = scope.spawn(|| {
                for _ in 0..10 {
                    let r = catch_unwind(AssertUnwindSafe(|| {
                        pool.broadcast(|w| {
                            if w == 1 {
                                panic!("boom");
                            }
                        });
                    }));
                    assert!(r.is_err());
                }
            });
            ok.join().expect("clean caller must stay clean");
            panicky.join().expect("panics were caught");
        });
    }
}
