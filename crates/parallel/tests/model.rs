//! Exhaustive model checks of the pool's broadcast handshake
//! (compiled only with `--features model`).
//!
//! These explore every interleaving (within the preemption bound) of
//! the epoch/remaining/condvar protocol in `pool.rs`. Deadlock
//! detection doubles as the missed-wakeup oracle: if any schedule
//! could lose a `work`/`done` notification, the explorer reports the
//! stuck schedule instead of hanging.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use lgr_parallel::Pool;
use lgr_sync::model;

/// One spawned worker + the caller: a broadcast runs `f` exactly once
/// per worker under every interleaving of the handshake.
#[test]
fn broadcast_runs_exactly_once_per_worker() {
    let report = model::check(|| {
        let pool = Pool::new(2);
        let counts: Vec<AtomicUsize> = (0..2).map(|_| AtomicUsize::new(0)).collect();
        pool.broadcast(|w| {
            // ordering: Relaxed — counts are only read after the
            // broadcast barrier below.
            counts[w].fetch_add(1, Ordering::Relaxed);
        });
        for (w, c) in counts.iter().enumerate() {
            // ordering: Relaxed — broadcast() already synchronized.
            assert_eq!(c.load(Ordering::Relaxed), 1, "worker {w}");
        }
        drop(pool); // shutdown handshake is part of the explored space
    });
    println!("broadcast_runs_exactly_once_per_worker: {report}");
    assert!(report.executions >= 2, "explorer must branch: {report}");
}

/// Epochs are cumulative: two broadcasts back to back never rerun or
/// skip a job, in any interleaving.
#[test]
fn consecutive_epochs_never_skip_or_rerun() {
    let report = model::check(|| {
        let pool = Pool::new(2);
        let total = Arc::new(AtomicUsize::new(0));
        for _ in 0..2 {
            let total = Arc::clone(&total);
            pool.broadcast(move |_| {
                // ordering: Relaxed — read back only after both
                // broadcasts complete.
                total.fetch_add(1, Ordering::Relaxed);
            });
        }
        // ordering: Relaxed — broadcasts are barriers.
        assert_eq!(total.load(Ordering::Relaxed), 4);
    });
    println!("consecutive_epochs_never_skip_or_rerun: {report}");
    assert!(report.executions >= 2, "explorer must branch: {report}");
}

/// The PR 5 serving-path claim: two caller threads driving one pool
/// concurrently serialize through the gate, and each broadcast still
/// runs exactly once per worker.
#[test]
fn concurrent_broadcasts_serialize_through_the_gate() {
    let report = model::check(|| {
        let pool = Arc::new(Pool::new(2));
        let total = Arc::new(AtomicUsize::new(0));
        let callers: Vec<_> = (0..2)
            .map(|_| {
                let (pool, total) = (Arc::clone(&pool), Arc::clone(&total));
                lgr_sync::thread::spawn(move || {
                    pool.broadcast(|_| {
                        // ordering: Relaxed — read after joins below.
                        total.fetch_add(1, Ordering::Relaxed);
                    });
                })
            })
            .collect();
        for c in callers {
            c.join().expect("callers do not fail");
        }
        // 2 broadcasts × 2 workers each.
        // ordering: Relaxed — joins synchronized.
        assert_eq!(total.load(Ordering::Relaxed), 4);
    });
    println!("concurrent_broadcasts_serialize_through_the_gate: {report}");
    assert!(report.executions >= 2, "explorer must branch: {report}");
}

/// The panic-under-contention regression: a worker panic mid-broadcast
/// must still complete the epoch (the caller resumes the payload), and
/// the *next* broadcast on the same pool must succeed — under every
/// interleaving. A lost `done`/`work` wakeup on the panic path would
/// surface as a model deadlock.
#[test]
fn worker_panic_cannot_lose_a_wakeup() {
    let report = model::check(|| {
        let pool = Pool::new(2);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.broadcast(|w| {
                if w == 1 {
                    // resume_unwind (not panic!) keeps the global panic
                    // hook quiet across thousands of explored schedules.
                    std::panic::resume_unwind(Box::new("boom"));
                }
            });
        }));
        assert!(r.is_err(), "worker panic must surface to the caller");
        // The pool survives: the next epoch completes everywhere.
        let ok = AtomicUsize::new(0);
        pool.broadcast(|_| {
            // ordering: Relaxed — read after the broadcast barrier.
            ok.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ok.into_inner(), 2);
    });
    println!("worker_panic_cannot_lose_a_wakeup: {report}");
    assert!(report.executions >= 2, "explorer must branch: {report}");
}

/// Dropping the pool while a worker may still be parked between
/// epochs: the shutdown broadcast reaches every worker in every
/// interleaving (no join ever hangs).
#[test]
fn shutdown_handshake_reaches_parked_workers() {
    let report = model::check(|| {
        let pool = Pool::new(2);
        drop(pool);
    });
    println!("shutdown_handshake_reaches_parked_workers: {report}");
    assert!(report.executions >= 1);
}
