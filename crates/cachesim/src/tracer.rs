//! The instrumentation interface between the analytics engine and the
//! simulator.
//!
//! The engine is generic over a [`Tracer`]; with [`NullTracer`] every
//! call compiles to nothing (so the measured wall-clock runs pay zero
//! overhead), while with [`crate::MemorySim`] the same algorithm code
//! drives the cache simulator.

use crate::layout::ArrayId;
use crate::sim::MemorySim;

/// Receives the memory-access and instruction stream of a traced
/// application run.
///
/// `core` is the logical core executing the access; the engine assigns
/// it from its work partitioning so the simulator sees the same
/// sharing pattern a parallel execution would.
pub trait Tracer {
    /// A read of `array[index]` by `core`.
    fn read(&mut self, core: usize, array: ArrayId, index: usize);

    /// A write of `array[index]` by `core`.
    fn write(&mut self, core: usize, array: ArrayId, index: usize);

    /// `count` modeled instructions executed (loop and ALU work that
    /// accompanies the accesses).
    fn instr(&mut self, count: u64);

    /// `true` if this tracer actually records anything. The engine can
    /// skip trace-only bookkeeping when it returns `false`.
    fn is_enabled(&self) -> bool {
        true
    }
}

/// A tracer that records nothing; all methods inline to no-ops.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullTracer;

impl Tracer for NullTracer {
    #[inline(always)]
    fn read(&mut self, _core: usize, _array: ArrayId, _index: usize) {}

    #[inline(always)]
    fn write(&mut self, _core: usize, _array: ArrayId, _index: usize) {}

    #[inline(always)]
    fn instr(&mut self, _count: u64) {}

    #[inline(always)]
    fn is_enabled(&self) -> bool {
        false
    }
}

impl Tracer for MemorySim {
    #[inline]
    fn read(&mut self, core: usize, array: ArrayId, index: usize) {
        MemorySim::read(self, core, array, index);
    }

    #[inline]
    fn write(&mut self, core: usize, array: ArrayId, index: usize) {
        MemorySim::write(self, core, array, index);
    }

    #[inline]
    fn instr(&mut self, count: u64) {
        MemorySim::instr(self, count);
    }
}

/// A test helper that counts events without simulating anything.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountingTracer {
    /// Number of reads observed.
    pub reads: u64,
    /// Number of writes observed.
    pub writes: u64,
    /// Sum of instruction counts observed.
    pub instructions: u64,
}

impl Tracer for CountingTracer {
    fn read(&mut self, _core: usize, _array: ArrayId, _index: usize) {
        self.reads += 1;
    }

    fn write(&mut self, _core: usize, _array: ArrayId, _index: usize) {
        self.writes += 1;
    }

    fn instr(&mut self, count: u64) {
        self.instructions += count;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::layout::{AccessPattern, MemoryLayout};

    #[test]
    fn null_tracer_is_disabled() {
        assert!(!NullTracer.is_enabled());
        let mut t = NullTracer;
        t.instr(100); // no-op, must not panic
    }

    #[test]
    fn counting_tracer_counts() {
        let mut t = CountingTracer::default();
        let id = ArrayId(0);
        t.read(0, id, 1);
        t.read(0, id, 2);
        t.write(1, id, 3);
        t.instr(7);
        assert_eq!(t.reads, 2);
        assert_eq!(t.writes, 1);
        assert_eq!(t.instructions, 7);
        assert!(t.is_enabled());
    }

    #[test]
    fn memory_sim_implements_tracer() {
        let mut layout = MemoryLayout::new();
        let a = layout.register("a", 8, 8, AccessPattern::Irregular);
        let mut sim = MemorySim::new(SimConfig::single_core(), layout);
        let t: &mut dyn Tracer = &mut sim;
        t.read(0, a, 0);
        t.write(0, a, 0);
        t.instr(10);
        assert_eq!(sim.stats().l1.accesses, 2);
        assert_eq!(sim.stats().instructions, 10);
    }
}
