//! Simulator configuration: hierarchy geometry and latency model.

use std::fmt;
use std::str::FromStr;

/// Access latencies in cycles, used to convert simulated miss counts
/// into an execution-time estimate (the basis of every speedup figure
/// in the reproduction).
///
/// Values approximate the paper's Broadwell Xeon. Only *ratios* matter
/// for speedups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyModel {
    /// L1 hit.
    pub l1: u64,
    /// L2 hit.
    pub l2: u64,
    /// LLC hit in the local socket, no snooping needed.
    pub l3: u64,
    /// Served by another core's cache in the same socket.
    pub snoop_local: u64,
    /// Served by the remote socket (cache-to-cache or remote LLC).
    pub snoop_remote: u64,
    /// DRAM.
    pub memory: u64,
    /// Effective memory-level parallelism for *streaming* accesses:
    /// prefetchable misses are charged `latency / streaming_mlp`.
    pub streaming_mlp: u64,
    /// Effective MLP for irregular accesses (out-of-order windows
    /// overlap a few misses even without prefetching).
    pub irregular_mlp: u64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            l1: 4,
            l2: 14,
            l3: 50,
            snoop_local: 90,
            snoop_remote: 150,
            memory: 250,
            streaming_mlp: 8,
            irregular_mlp: 2,
        }
    }
}

/// Cache hierarchy geometry.
///
/// The defaults scale the paper's dual-socket Xeon (10 cores/socket,
/// 32 KiB L1, 256 KiB L2, 25 MiB shared LLC per socket) down by the
/// same factor as the dataset suite, preserving the
/// property-array : LLC ratio that drives every observed effect
/// (DESIGN.md §5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// Total cores; they are split evenly across sockets.
    pub cores: usize,
    /// Number of sockets (the paper's platform has 2).
    pub sockets: usize,
    /// Per-core L1 data cache capacity in bytes.
    pub l1_bytes: usize,
    /// L1 associativity.
    pub l1_ways: usize,
    /// Per-core L2 capacity in bytes.
    pub l2_bytes: usize,
    /// L2 associativity.
    pub l2_ways: usize,
    /// Per-socket shared LLC capacity in bytes.
    pub llc_bytes: usize,
    /// LLC associativity.
    pub llc_ways: usize,
    /// Latency model for cycle estimation.
    pub latency: LatencyModel,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            cores: 8,
            sockets: 2,
            l1_bytes: 4 << 10,
            l1_ways: 8,
            l2_bytes: 16 << 10,
            l2_ways: 8,
            llc_bytes: 128 << 10,
            llc_ways: 16,
            latency: LatencyModel::default(),
        }
    }
}

/// Largest simulatable core count: the coherence directory stores
/// sharer sets as 16-bit masks.
pub const MAX_CORES: usize = 16;

impl SimConfig {
    /// A single-core configuration (handy for unit tests and
    /// pull-only measurements).
    pub fn single_core() -> Self {
        SimConfig {
            cores: 1,
            sockets: 1,
            ..Default::default()
        }
    }

    /// Checks every invariant [`MemorySim::new`](crate::MemorySim::new)
    /// would later assert — core count within `1..=16`, at least one
    /// socket, cores dividing evenly across sockets — so callers
    /// building a config from untrusted input (CLI flags, RPC
    /// payloads) get a reportable error instead of a panic deep in
    /// simulator construction. [`SimConfig::from_str`] applies this
    /// automatically.
    pub fn validate(&self) -> Result<(), SimConfigParseError> {
        if self.cores < 1 || self.cores > MAX_CORES {
            return Err(SimConfigParseError {
                token: format!("cores={}", self.cores),
                expected: Some(format!(
                    "1..={MAX_CORES} cores (directory sharer masks are 16-bit)"
                )),
            });
        }
        if self.sockets < 1 || !self.cores.is_multiple_of(self.sockets) {
            return Err(SimConfigParseError {
                token: format!("cores={} with sockets={}", self.cores, self.sockets),
                expected: Some("cores dividing evenly across at least one socket".to_owned()),
            });
        }
        Ok(())
    }

    /// Cores per socket.
    ///
    /// # Panics
    ///
    /// Panics if cores don't divide evenly across sockets.
    pub fn cores_per_socket(&self) -> usize {
        assert!(
            self.sockets > 0 && self.cores.is_multiple_of(self.sockets),
            "{} cores don't divide across {} sockets",
            self.cores,
            self.sockets
        );
        self.cores / self.sockets
    }

    /// Socket that owns core `core`.
    pub fn socket_of(&self, core: usize) -> usize {
        core / self.cores_per_socket()
    }
}

/// A malformed simulator knob string. Carries the offending token and
/// the valid knob names, matching the engine's spec-error contract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimConfigParseError {
    /// The `key=value` (or bare) token that failed.
    pub token: String,
    /// What a valid value would look like, when the token named a real
    /// knob but its value was out of range.
    pub expected: Option<String>,
}

/// Knob names accepted by [`SimConfig::from_str`].
pub const SIM_KNOBS: [&str; 5] = ["cores", "sockets", "l1kb", "l2kb", "llckb"];

impl fmt::Display for SimConfigParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid simulator knob `{}`", self.token)?;
        if let Some(expected) = &self.expected {
            write!(f, " (expected {expected})")?;
        }
        write!(f, "; valid: {}", SIM_KNOBS.join(", "))
    }
}

impl std::error::Error for SimConfigParseError {}

/// Parses a comma-separated knob list over the default geometry, the
/// string-addressable surface CLI/session layers expose
/// (`"cores=4,sockets=1,llckb=64"`). Capacities are in KiB;
/// associativities and the latency model keep their defaults.
///
/// ```
/// use lgr_cachesim::SimConfig;
///
/// let cfg: SimConfig = "cores=4,sockets=1,llckb=64".parse().unwrap();
/// assert_eq!(cfg.cores, 4);
/// assert_eq!(cfg.llc_bytes, 64 << 10);
/// assert!("turbo=9".parse::<SimConfig>().unwrap_err().to_string().contains("turbo=9"));
/// ```
impl FromStr for SimConfig {
    type Err = SimConfigParseError;

    fn from_str(s: &str) -> Result<Self, SimConfigParseError> {
        let mut cfg = SimConfig::default();
        for token in s.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            let err = || SimConfigParseError {
                token: token.to_owned(),
                expected: None,
            };
            let (key, value) = token.split_once('=').ok_or_else(err)?;
            let n: usize = value.trim().parse().map_err(|_| err())?;
            if n == 0 {
                return Err(err());
            }
            match key.trim() {
                "cores" => cfg.cores = n,
                "sockets" => cfg.sockets = n,
                "l1kb" => cfg.l1_bytes = n << 10,
                "l2kb" => cfg.l2_bytes = n << 10,
                "llckb" => cfg.llc_bytes = n << 10,
                _ => return Err(err()),
            }
        }
        // Every bound `MemorySim::new` asserts is checked here, so a
        // malformed `--sim` flag is a clean parse error (CLI exit 1),
        // never a panic inside simulator construction.
        cfg.validate()?;
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_geometry_is_sane() {
        let c = SimConfig::default();
        assert_eq!(c.cores_per_socket(), 4);
        assert_eq!(c.socket_of(0), 0);
        assert_eq!(c.socket_of(3), 0);
        assert_eq!(c.socket_of(4), 1);
        assert!(c.l1_bytes < c.l2_bytes && c.l2_bytes < c.llc_bytes);
    }

    #[test]
    fn latencies_monotone() {
        let l = LatencyModel::default();
        assert!(l.l1 < l.l2 && l.l2 < l.l3);
        assert!(l.l3 < l.snoop_local && l.snoop_local < l.snoop_remote);
        assert!(l.snoop_remote < l.memory);
    }

    #[test]
    fn knob_strings_parse_over_defaults() {
        let cfg: SimConfig = "cores=2, sockets=1".parse().unwrap();
        assert_eq!(cfg.cores, 2);
        assert_eq!(cfg.sockets, 1);
        assert_eq!(cfg.l1_bytes, SimConfig::default().l1_bytes);
        assert_eq!("".parse::<SimConfig>().unwrap(), SimConfig::default());
        let err = "cores=3,sockets=2".parse::<SimConfig>().unwrap_err();
        assert!(err.to_string().contains("cores=3"), "{err}");
        let err = "l1kb=0".parse::<SimConfig>().unwrap_err();
        assert_eq!(err.token, "l1kb=0");
    }

    #[test]
    fn core_bound_is_a_parse_error_not_a_panic() {
        // Regression: `--sim cores=32` used to parse fine and then
        // panic in MemorySim::new; the bound now lives in validation.
        let err = "cores=32,sockets=2".parse::<SimConfig>().unwrap_err();
        assert_eq!(err.token, "cores=32");
        assert!(err.to_string().contains("1..=16"), "{err}");
        // The boundary itself is accepted.
        assert!("cores=16,sockets=2".parse::<SimConfig>().is_ok());
        // validate() covers hand-built configs the same way.
        let cfg = SimConfig {
            cores: 32,
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = SimConfig {
            sockets: 0,
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
        assert!(SimConfig::default().validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "don't divide")]
    fn uneven_socket_split_panics() {
        let c = SimConfig {
            cores: 3,
            sockets: 2,
            ..Default::default()
        };
        let _ = c.cores_per_socket();
    }
}
