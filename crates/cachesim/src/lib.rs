//! Trace-driven multi-core cache hierarchy simulator.
//!
//! The paper's evaluation reads hardware performance counters on a
//! dual-socket Broadwell Xeon: per-level MPKI (Fig. 8) and a
//! classification of L2 misses into L3 hits, intra-socket snoops,
//! cross-socket snoops, and off-chip accesses (Fig. 9). This crate
//! reproduces those measurements in software:
//!
//! * [`cache::SetAssocCache`] — an LRU set-associative cache.
//! * [`layout::MemoryLayout`] — maps logical array elements (vertex
//!   array, edge array, property arrays...) to byte addresses.
//! * [`MemorySim`] — the full hierarchy: per-core private L1/L2, one
//!   shared LLC per socket, and a directory that classifies every L2
//!   miss the way the paper's Fig. 9 does.
//! * [`stats::SimStats`] — MPKI per level, miss breakdowns, and a
//!   cycle estimate from a configurable latency model.
//! * [`tracer::Tracer`] — the instrumentation interface the analytics
//!   engine drives; [`tracer::NullTracer`] compiles to nothing so the
//!   same algorithm code also runs untraced at full speed.
//!
//! # Example
//!
//! ```
//! use lgr_cachesim::{AccessPattern, MemorySim, SimConfig};
//! use lgr_cachesim::layout::MemoryLayout;
//! use lgr_cachesim::tracer::Tracer;
//!
//! let mut layout = MemoryLayout::new();
//! let prop = layout.register("prop", 1024, 8, AccessPattern::Irregular);
//! let mut sim = MemorySim::new(SimConfig::default(), layout);
//! sim.read(0, prop, 7);
//! sim.read(0, prop, 7); // second access hits in L1
//! let stats = sim.stats();
//! assert_eq!(stats.l1.accesses, 2);
//! assert_eq!(stats.l1.misses, 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod config;
pub mod layout;
pub mod sim;
pub mod stats;
pub mod tracer;

pub use config::{LatencyModel, SimConfig, SimConfigParseError, MAX_CORES, SIM_KNOBS};
pub use layout::{AccessPattern, ArrayId, MemoryLayout};
pub use sim::MemorySim;
pub use stats::{L2MissBreakdown, LevelStats, SimStats};
pub use tracer::{CountingTracer, NullTracer, Tracer};

/// Cache block size in bytes (64, as on the paper's Broadwell Xeon).
pub const BLOCK_BYTES: u64 = 64;
