//! Logical-array-to-address mapping.
//!
//! The analytics engine thinks in terms of arrays ("the in-edge array",
//! "the rank property array") and element indices. [`MemoryLayout`]
//! assigns each registered array a block-aligned base address so the
//! simulator sees the same packing effects a real allocation would:
//! eight 8-byte properties per 64-byte block, hot properties sharing
//! blocks with cold ones, and so on.

use crate::BLOCK_BYTES;

/// Handle to a registered array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArrayId(pub(crate) u32);

/// How an array is accessed, which decides how the cost model charges
/// its misses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessPattern {
    /// Sequential/streaming (vertex index array, edge array, frontier
    /// bitmaps): hardware prefetchers hide most of the latency.
    Streaming,
    /// Data-dependent scatter/gather (property arrays indexed by
    /// neighbor ID): the latency-bound accesses reordering targets.
    Irregular,
}

#[derive(Debug, Clone)]
struct ArrayInfo {
    name: String,
    base: u64,
    elem_bytes: u64,
    len: usize,
    pattern: AccessPattern,
}

/// Maps logical array elements to byte addresses.
///
/// Arrays are laid out consecutively, each starting on a cache block
/// boundary (as heap allocators do for large allocations).
#[derive(Debug, Clone, Default)]
pub struct MemoryLayout {
    arrays: Vec<ArrayInfo>,
    next_base: u64,
}

impl MemoryLayout {
    /// An empty layout.
    pub fn new() -> Self {
        MemoryLayout {
            arrays: Vec::new(),
            // Non-zero base so address 0 is never valid.
            next_base: BLOCK_BYTES,
        }
    }

    /// Registers an array of `len` elements of `elem_bytes` each.
    ///
    /// # Panics
    ///
    /// Panics if `elem_bytes` is 0.
    pub fn register(
        &mut self,
        name: &str,
        len: usize,
        elem_bytes: u64,
        pattern: AccessPattern,
    ) -> ArrayId {
        assert!(elem_bytes > 0, "zero-sized elements");
        let id = ArrayId(self.arrays.len() as u32);
        let base = self.next_base;
        let bytes = len as u64 * elem_bytes;
        // Advance to the next block boundary.
        self.next_base = (base + bytes).div_ceil(BLOCK_BYTES) * BLOCK_BYTES;
        self.arrays.push(ArrayInfo {
            name: name.to_owned(),
            base,
            elem_bytes,
            len,
            pattern,
        });
        id
    }

    /// Byte address of element `index` of `array`.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if the index is out of bounds.
    #[inline]
    pub fn addr(&self, array: ArrayId, index: usize) -> u64 {
        let info = &self.arrays[array.0 as usize];
        debug_assert!(
            index < info.len,
            "index {index} out of bounds for array {} (len {})",
            info.name,
            info.len
        );
        info.base + index as u64 * info.elem_bytes
    }

    /// Access pattern of `array`.
    #[inline]
    pub fn pattern(&self, array: ArrayId) -> AccessPattern {
        self.arrays[array.0 as usize].pattern
    }

    /// Registered name of `array`.
    pub fn name(&self, array: ArrayId) -> &str {
        &self.arrays[array.0 as usize].name
    }

    /// Number of registered arrays.
    pub fn num_arrays(&self) -> usize {
        self.arrays.len()
    }

    /// Total footprint in bytes across all registered arrays.
    pub fn total_bytes(&self) -> u64 {
        self.next_base - BLOCK_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrays_are_block_aligned_and_disjoint() {
        let mut l = MemoryLayout::new();
        let a = l.register("a", 10, 8, AccessPattern::Streaming);
        let b = l.register("b", 3, 4, AccessPattern::Irregular);
        assert_eq!(l.addr(a, 0) % BLOCK_BYTES, 0);
        assert_eq!(l.addr(b, 0) % BLOCK_BYTES, 0);
        // `a` spans 80 bytes = 2 blocks; `b` must start after it.
        assert!(l.addr(b, 0) >= l.addr(a, 9) + 8);
    }

    #[test]
    fn element_addressing() {
        let mut l = MemoryLayout::new();
        let a = l.register("a", 100, 8, AccessPattern::Irregular);
        assert_eq!(l.addr(a, 1) - l.addr(a, 0), 8);
        assert_eq!(l.addr(a, 8) - l.addr(a, 0), 64);
    }

    #[test]
    fn eight_byte_elements_share_blocks() {
        let mut l = MemoryLayout::new();
        let a = l.register("a", 16, 8, AccessPattern::Irregular);
        let b0 = l.addr(a, 0) / BLOCK_BYTES;
        assert_eq!(l.addr(a, 7) / BLOCK_BYTES, b0, "first 8 elems in one block");
        assert_eq!(l.addr(a, 8) / BLOCK_BYTES, b0 + 1);
    }

    #[test]
    fn metadata_accessors() {
        let mut l = MemoryLayout::new();
        let a = l.register("ranks", 5, 8, AccessPattern::Irregular);
        assert_eq!(l.name(a), "ranks");
        assert_eq!(l.pattern(a), AccessPattern::Irregular);
        assert_eq!(l.num_arrays(), 1);
        assert!(l.total_bytes() >= 40);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "out of bounds")]
    fn debug_bounds_check() {
        let mut l = MemoryLayout::new();
        let a = l.register("a", 2, 8, AccessPattern::Streaming);
        let _ = l.addr(a, 2);
    }
}
