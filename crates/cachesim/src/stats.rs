//! Simulation statistics: per-level hit/miss counts, the paper's
//! Fig. 9 L2-miss breakdown, and the cycle estimate.

/// Accesses and misses at one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LevelStats {
    /// Lookups performed at this level.
    pub accesses: u64,
    /// Lookups that missed.
    pub misses: u64,
}

impl LevelStats {
    /// Hits at this level.
    pub fn hits(&self) -> u64 {
        self.accesses - self.misses
    }

    /// Misses per kilo-instruction given the run's instruction count.
    pub fn mpki(&self, instructions: u64) -> f64 {
        if instructions == 0 {
            0.0
        } else {
            self.misses as f64 * 1000.0 / instructions as f64
        }
    }

    /// Miss ratio in `[0, 1]`.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// Where L2 misses were served — the four stacked categories of the
/// paper's Fig. 9.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct L2MissBreakdown {
    /// Served by the local socket's LLC with no snoop.
    pub l3_hits: u64,
    /// Served by another core's private cache in the same socket.
    pub snoops_local: u64,
    /// Served by the remote socket (remote LLC or remote core).
    pub snoops_remote: u64,
    /// Served from DRAM.
    pub off_chip: u64,
}

impl L2MissBreakdown {
    /// Total classified L2 misses.
    pub fn total(&self) -> u64 {
        self.l3_hits + self.snoops_local + self.snoops_remote + self.off_chip
    }

    /// The four categories as fractions of the total, in Fig. 9's
    /// stacking order (L3 hits, local snoops, remote snoops, off-chip).
    /// All zeros when no misses occurred.
    pub fn fractions(&self) -> [f64; 4] {
        let t = self.total();
        if t == 0 {
            return [0.0; 4];
        }
        let t = t as f64;
        [
            self.l3_hits as f64 / t,
            self.snoops_local as f64 / t,
            self.snoops_remote as f64 / t,
            self.off_chip as f64 / t,
        ]
    }
}

/// Aggregate statistics for one simulated run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Modeled instruction count (charged by the traced application).
    pub instructions: u64,
    /// L1 data cache.
    pub l1: LevelStats,
    /// Private L2.
    pub l2: LevelStats,
    /// Shared LLC. `misses` are off-chip accesses, matching the
    /// hardware counter the paper reads for L3 MPKI.
    pub l3: LevelStats,
    /// Classification of every L2 miss (Fig. 9).
    pub l2_breakdown: L2MissBreakdown,
    /// Estimated execution cycles from the latency model.
    pub cycles: u64,
}

impl SimStats {
    /// L1 / L2 / L3 MPKI triple (Fig. 8's three panels).
    pub fn mpki(&self) -> [f64; 3] {
        [
            self.l1.mpki(self.instructions),
            self.l2.mpki(self.instructions),
            self.l3.mpki(self.instructions),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_stats_math() {
        let s = LevelStats {
            accesses: 1000,
            misses: 250,
        };
        assert_eq!(s.hits(), 750);
        assert_eq!(s.miss_ratio(), 0.25);
        assert_eq!(s.mpki(10_000), 25.0);
        assert_eq!(s.mpki(0), 0.0);
    }

    #[test]
    fn breakdown_fractions_sum_to_one() {
        let b = L2MissBreakdown {
            l3_hits: 10,
            snoops_local: 20,
            snoops_remote: 30,
            off_chip: 40,
        };
        assert_eq!(b.total(), 100);
        let f = b.fractions();
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(f[3], 0.4);
    }

    #[test]
    fn empty_breakdown() {
        assert_eq!(L2MissBreakdown::default().fractions(), [0.0; 4]);
    }
}
