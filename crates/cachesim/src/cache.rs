//! An LRU set-associative cache over 64-byte blocks.

use crate::BLOCK_BYTES;

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Whether the block was present.
    pub hit: bool,
    /// Block evicted to make room, with its dirty flag (only on miss
    /// insertion into a full set).
    pub evicted: Option<(u64, bool)>,
}

#[derive(Debug, Clone, Copy)]
struct Line {
    /// Block address (byte address >> 6); `u64::MAX` = invalid.
    block: u64,
    /// LRU timestamp: larger = more recently used.
    stamp: u64,
    dirty: bool,
}

const INVALID: u64 = u64::MAX;

/// An LRU set-associative cache. Stores block addresses only (trace
/// simulation needs no data).
///
/// # Example
///
/// ```
/// use lgr_cachesim::cache::SetAssocCache;
///
/// let mut c = SetAssocCache::new(4096, 4); // 4 KiB, 4-way
/// assert!(!c.access(0x40, false).hit);
/// assert!(c.access(0x40, false).hit);
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    lines: Vec<Line>,
    ways: usize,
    num_sets: usize,
    clock: u64,
}

impl SetAssocCache {
    /// Creates a cache of `capacity_bytes` with `ways` lines per set.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is not a positive multiple of
    /// `ways * 64`, or if the resulting set count is not a power of
    /// two.
    pub fn new(capacity_bytes: usize, ways: usize) -> Self {
        assert!(ways >= 1, "need at least one way");
        let block = BLOCK_BYTES as usize;
        assert!(
            capacity_bytes >= ways * block && capacity_bytes.is_multiple_of(ways * block),
            "capacity {capacity_bytes} not a multiple of {} (ways * block)",
            ways * block
        );
        let num_sets = capacity_bytes / (ways * block);
        assert!(
            num_sets.is_power_of_two(),
            "set count {num_sets} must be a power of two"
        );
        SetAssocCache {
            lines: vec![
                Line {
                    block: INVALID,
                    stamp: 0,
                    dirty: false
                };
                num_sets * ways
            ],
            ways,
            num_sets,
            clock: 0,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.num_sets * self.ways * BLOCK_BYTES as usize
    }

    fn set_range(&self, block: u64) -> std::ops::Range<usize> {
        // Hashed set indexing (Fibonacci multiplicative hash) rather
        // than low-order bits. This models what a real machine does to
        // regular address patterns: virtual-to-physical translation
        // scatters page-granularity bits, and Intel LLCs hash the set
        // index outright. Without it, synthetic graphs whose hot
        // vertices sit at structured IDs (e.g. R-MAT's low-popcount
        // hubs) collide into a handful of sets and the simulator
        // reports conflict pathologies no real run would see.
        let set = if self.num_sets == 1 {
            0
        } else {
            let hashed = block.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            (hashed >> (64 - self.num_sets.trailing_zeros())) as usize
        };
        set * self.ways..(set + 1) * self.ways
    }

    /// Accesses the block containing byte address `addr`, allocating on
    /// miss. `write` marks the block dirty on hit or fill.
    pub fn access(&mut self, addr: u64, write: bool) -> AccessResult {
        let block = addr / BLOCK_BYTES;
        self.access_block(block, write)
    }

    /// Accesses a pre-shifted block address.
    pub fn access_block(&mut self, block: u64, write: bool) -> AccessResult {
        self.clock += 1;
        let clock = self.clock;
        let range = self.set_range(block);
        let set = &mut self.lines[range];

        // Hit?
        if let Some(line) = set.iter_mut().find(|l| l.block == block) {
            line.stamp = clock;
            line.dirty |= write;
            return AccessResult {
                hit: true,
                evicted: None,
            };
        }
        // Miss: fill into invalid or LRU way.
        let victim = set
            .iter_mut()
            .min_by_key(|l| if l.block == INVALID { 0 } else { l.stamp })
            .expect("sets are non-empty");
        let evicted = if victim.block == INVALID {
            None
        } else {
            Some((victim.block, victim.dirty))
        };
        *victim = Line {
            block,
            stamp: clock,
            dirty: write,
        };
        AccessResult {
            hit: false,
            evicted,
        }
    }

    /// `true` if the block containing `addr` is present (no LRU
    /// update).
    pub fn contains_block(&self, block: u64) -> bool {
        let range = self.set_range(block);
        self.lines[range].iter().any(|l| l.block == block)
    }

    /// Removes a block if present, returning whether it was dirty.
    pub fn invalidate_block(&mut self, block: u64) -> Option<bool> {
        let range = self.set_range(block);
        for l in &mut self.lines[range] {
            if l.block == block {
                let dirty = l.dirty;
                l.block = INVALID;
                l.dirty = false;
                return Some(dirty);
            }
        }
        None
    }

    /// Inserts a block without counting an access (used for fills from
    /// write-backs), returning any eviction.
    pub fn fill_block(&mut self, block: u64, dirty: bool) -> Option<(u64, bool)> {
        if self.contains_block(block) {
            // Merge dirtiness into the existing line.
            let range = self.set_range(block);
            for l in &mut self.lines[range] {
                if l.block == block {
                    l.dirty |= dirty;
                }
            }
            return None;
        }
        let r = self.access_block(block, dirty);
        r.evicted
    }

    /// Number of valid blocks currently resident.
    pub fn occupancy(&self) -> usize {
        self.lines.iter().filter(|l| l.block != INVALID).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_hit_miss() {
        let mut c = SetAssocCache::new(4096, 4);
        assert!(!c.access(0, false).hit);
        assert!(c.access(8, false).hit, "same 64B block");
        assert!(!c.access(64, false).hit, "next block");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_sets() {
        let _ = SetAssocCache::new(3 * 64 * 4, 4);
    }

    /// First `count` block addresses that map to the same set as block
    /// `0` (set indexing is hashed, so collisions are found by probing).
    fn colliding_blocks(c: &SetAssocCache, count: usize) -> Vec<u64> {
        let target = c.set_range(0);
        let mut out = vec![0u64];
        let mut b = 1u64;
        while out.len() < count {
            if c.set_range(b) == target {
                out.push(b);
            }
            b += 1;
        }
        out
    }

    #[test]
    fn lru_evicts_least_recent() {
        // Tiny cache: 2 sets x 2 ways; pick three same-set blocks.
        let mut c = SetAssocCache::new(2 * 2 * 64, 2);
        let blocks = colliding_blocks(&c, 3);
        let (b0, b1, b2) = (blocks[0], blocks[1], blocks[2]);
        c.access_block(b0, false);
        c.access_block(b1, false);
        c.access_block(b0, false); // b0 more recent than b1
        let r = c.access_block(b2, false);
        assert_eq!(r.evicted, Some((b1, false)), "LRU ({b1}) evicted");
        assert!(c.contains_block(b0));
        assert!(!c.contains_block(b1));
    }

    #[test]
    fn dirty_eviction_reported() {
        let mut c = SetAssocCache::new(2 * 64, 1); // 2 sets x 1 way
        let blocks = colliding_blocks(&c, 2);
        c.access_block(blocks[0], true); // dirty
        let r = c.access_block(blocks[1], false); // same set, evicts
        assert_eq!(r.evicted, Some((blocks[0], true)));
    }

    #[test]
    fn write_on_hit_sets_dirty() {
        let mut c = SetAssocCache::new(2 * 64, 1);
        let blocks = colliding_blocks(&c, 2);
        c.access_block(blocks[0], false);
        c.access_block(blocks[0], true); // now dirty
        let r = c.access_block(blocks[1], false);
        assert_eq!(r.evicted, Some((blocks[0], true)));
    }

    #[test]
    fn single_set_cache_works() {
        let mut c = SetAssocCache::new(2 * 64, 2); // 1 set x 2 ways
        assert!(!c.access_block(0, false).hit);
        assert!(!c.access_block(1, false).hit);
        assert!(c.access_block(0, false).hit);
        let r = c.access_block(2, false);
        assert_eq!(r.evicted, Some((1, false)));
    }

    #[test]
    fn invalidate_returns_dirtiness() {
        let mut c = SetAssocCache::new(4096, 4);
        c.access_block(5, true);
        assert_eq!(c.invalidate_block(5), Some(true));
        assert_eq!(c.invalidate_block(5), None);
        assert!(!c.contains_block(5));
    }

    #[test]
    fn fill_merges_dirtiness() {
        let mut c = SetAssocCache::new(4096, 4);
        c.access_block(9, false);
        assert!(c.fill_block(9, true).is_none());
        assert_eq!(c.invalidate_block(9), Some(true));
    }

    #[test]
    fn occupancy_bounded_by_capacity() {
        let mut c = SetAssocCache::new(8 * 64, 2); // 8 blocks
        for b in 0..100 {
            c.access_block(b, false);
        }
        assert!(c.occupancy() <= 8);
    }

    #[test]
    fn capacity_reported() {
        let c = SetAssocCache::new(4096, 4);
        assert_eq!(c.capacity_bytes(), 4096);
    }
}
