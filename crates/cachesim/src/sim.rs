//! The full memory hierarchy simulator.
//!
//! Geometry: per-core private L1 and L2 (L2 inclusive of L1), one
//! shared LLC per socket, and a directory tracking which cores hold
//! each block so every L2 miss can be classified the way the paper's
//! Fig. 9 does (L3 hit / intra-socket snoop / cross-socket snoop /
//! off-chip). Writes to blocks shared by other cores trigger
//! invalidations (RFO), which is what makes push-based applications
//! (PRD, SSSP) generate the coherence traffic the paper measures.

use crate::cache::SetAssocCache;
use crate::config::SimConfig;
use crate::layout::{AccessPattern, ArrayId, MemoryLayout};
use crate::stats::SimStats;
use crate::BLOCK_BYTES;

/// Directory entry: which cores hold the block, and whether one of
/// them holds it dirty.
#[derive(Debug, Clone, Copy, Default)]
struct DirEntry {
    /// Bitmask over cores with the block in their private caches.
    sharers: u16,
    /// Core holding the block modified; `NO_OWNER` if clean.
    dirty_owner: u8,
}

const NO_OWNER: u8 = u8::MAX;

/// Where an access was ultimately served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ServePoint {
    L1,
    L2,
    L3,
    SnoopLocal,
    SnoopRemote,
    Memory,
}

/// The trace-driven multi-core memory hierarchy simulator.
///
/// Drive it through the [`crate::tracer::Tracer`] interface (or the
/// inherent [`MemorySim::read`] / [`MemorySim::write`] /
/// [`MemorySim::instr`] methods) and read the results from
/// [`MemorySim::stats`].
#[derive(Debug)]
pub struct MemorySim {
    config: SimConfig,
    layout: MemoryLayout,
    l1: Vec<SetAssocCache>,
    l2: Vec<SetAssocCache>,
    llc: Vec<SetAssocCache>,
    directory: Vec<DirEntry>,
    stats: SimStats,
}

impl MemorySim {
    /// Creates a simulator for the given configuration and address
    /// layout.
    ///
    /// # Panics
    ///
    /// Panics if the configuration requests more than 16 cores (the
    /// directory stores sharer sets as 16-bit masks) or if cores do not
    /// divide evenly across sockets.
    pub fn new(config: SimConfig, layout: MemoryLayout) -> Self {
        assert!(
            config.cores >= 1 && config.cores <= crate::config::MAX_CORES,
            "1..={} cores supported",
            crate::config::MAX_CORES
        );
        let _ = config.cores_per_socket(); // validates divisibility
        let num_blocks = (layout.total_bytes() / BLOCK_BYTES + 2) as usize;
        MemorySim {
            l1: (0..config.cores)
                .map(|_| SetAssocCache::new(config.l1_bytes, config.l1_ways))
                .collect(),
            l2: (0..config.cores)
                .map(|_| SetAssocCache::new(config.l2_bytes, config.l2_ways))
                .collect(),
            llc: (0..config.sockets)
                .map(|_| SetAssocCache::new(config.llc_bytes, config.llc_ways))
                .collect(),
            directory: vec![DirEntry::default(); num_blocks],
            config,
            layout,
            stats: SimStats::default(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The address layout in use.
    pub fn layout(&self) -> &MemoryLayout {
        &self.layout
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Charges `count` modeled instructions executed by a core.
    /// Instructions contribute `count / 2` base cycles (IPC 2 when not
    /// memory-stalled).
    pub fn instr(&mut self, count: u64) {
        self.stats.instructions += count;
        self.stats.cycles += count / 2;
    }

    /// Simulates a read of `array[index]` by `core`.
    pub fn read(&mut self, core: usize, array: ArrayId, index: usize) {
        let addr = self.layout.addr(array, index);
        let pattern = self.layout.pattern(array);
        self.access(core, addr / BLOCK_BYTES, false, pattern);
    }

    /// Simulates a write of `array[index]` by `core`.
    pub fn write(&mut self, core: usize, array: ArrayId, index: usize) {
        let addr = self.layout.addr(array, index);
        let pattern = self.layout.pattern(array);
        self.access(core, addr / BLOCK_BYTES, true, pattern);
    }

    fn access(&mut self, core: usize, block: u64, write: bool, pattern: AccessPattern) {
        debug_assert!(core < self.config.cores, "core {core} out of range");
        let served = self.access_inner(core, block, write);
        self.charge(served, pattern);
    }

    fn access_inner(&mut self, core: usize, block: u64, write: bool) -> ServePoint {
        let dir_idx = block as usize % self.directory.len();

        // A write to a block other cores hold must invalidate them
        // (RFO), even if our own copy is an L1 hit. This is the source
        // of push-application coherence traffic.
        if write {
            let entry = self.directory[dir_idx];
            let others = entry.sharers & !(1u16 << core);
            if others != 0 {
                return self.rfo(core, block, dir_idx, others, entry);
            }
        }

        // L1.
        self.stats.l1.accesses += 1;
        let r1 = self.l1[core].access_block(block, write);
        if r1.hit {
            if write {
                self.directory[dir_idx].dirty_owner = core as u8;
                self.directory[dir_idx].sharers |= 1 << core;
            }
            return ServePoint::L1;
        }
        self.stats.l1.misses += 1;
        if let Some((evicted, dirty)) = r1.evicted {
            if dirty {
                self.fold_l1_victim_into_l2(core, evicted);
            }
        }

        // L2.
        self.stats.l2.accesses += 1;
        let r2 = self.l2[core].access_block(block, write);
        if let Some((evicted, dirty)) = r2.evicted {
            self.evict_from_l2(core, evicted, dirty);
        }
        if r2.hit {
            self.note_present(dir_idx, core, write);
            return ServePoint::L2;
        }
        self.stats.l2.misses += 1;

        // L2 miss: classify like Fig. 9.
        let served = self.serve_l2_miss(core, block, dir_idx, write);
        self.note_present(dir_idx, core, write);
        served
    }

    /// Read-for-ownership: invalidate every other holder, classify the
    /// transfer as a snoop, and install the line exclusively here.
    fn rfo(
        &mut self,
        core: usize,
        block: u64,
        dir_idx: usize,
        others: u16,
        entry: DirEntry,
    ) -> ServePoint {
        // Invalidate all other private copies.
        for c in 0..self.config.cores {
            if others & (1 << c) != 0 {
                self.l1[c].invalidate_block(block);
                self.l2[c].invalidate_block(block);
            }
        }
        // Ownership transfer counted as a full miss chain.
        self.stats.l1.accesses += 1;
        self.stats.l1.misses += 1;
        self.stats.l2.accesses += 1;
        self.stats.l2.misses += 1;
        self.stats.l3.accesses += 1;

        // Provider: the dirty owner if any (only it holds the current
        // data, so *its* socket decides the Fig. 9 local/remote
        // split, even when stale sharer bits linger on the
        // requester's socket), else the nearest clean sharer.
        let my_socket = self.config.socket_of(core);
        let provider = if entry.dirty_owner != NO_OWNER && entry.dirty_owner as usize != core {
            entry.dirty_owner as usize
        } else {
            (0..self.config.cores)
                .filter(|&c| others & (1 << c) != 0)
                .min_by_key(|&c| usize::from(self.config.socket_of(c) != my_socket))
                .expect("others is non-empty")
        };
        let served = if self.config.socket_of(provider) == my_socket {
            self.stats.l2_breakdown.snoops_local += 1;
            ServePoint::SnoopLocal
        } else {
            self.stats.l2_breakdown.snoops_remote += 1;
            ServePoint::SnoopRemote
        };

        // Install exclusively in this core's caches.
        if let Some((e, d)) = self.l1[core].fill_block(block, true) {
            if d {
                self.fold_l1_victim_into_l2(core, e);
            }
        }
        if let Some((e, d)) = self.l2[core].fill_block(block, true) {
            self.evict_from_l2(core, e, d);
        }
        self.directory[dir_idx] = DirEntry {
            sharers: 1 << core,
            dirty_owner: core as u8,
        };
        served
    }

    /// Classifies and serves an L2 miss: local dirty holder → snoop;
    /// local LLC → L3 hit; remote holder/LLC → remote snoop; else DRAM.
    fn serve_l2_miss(
        &mut self,
        core: usize,
        block: u64,
        dir_idx: usize,
        write: bool,
    ) -> ServePoint {
        self.stats.l3.accesses += 1;
        let my_socket = self.config.socket_of(core);
        let entry = self.directory[dir_idx];

        // A dirty copy in another core's cache must be snooped.
        let dirty_owner = entry.dirty_owner;
        if dirty_owner != NO_OWNER && dirty_owner as usize != core {
            let owner = dirty_owner as usize;
            if write {
                // Write: take ownership, invalidate the old owner.
                self.l1[owner].invalidate_block(block);
                self.l2[owner].invalidate_block(block);
                self.directory[dir_idx] = DirEntry {
                    sharers: 0, // requester added by note_present
                    dirty_owner: NO_OWNER,
                };
            } else {
                // Read: the owner's line is demoted to shared; the
                // dirty data is written back to the owner's LLC.
                self.directory[dir_idx].dirty_owner = NO_OWNER;
                let owner_socket = self.config.socket_of(owner);
                self.llc_fill(owner_socket, block, true);
            }
            return if self.config.socket_of(owner) == my_socket {
                self.stats.l2_breakdown.snoops_local += 1;
                ServePoint::SnoopLocal
            } else {
                self.stats.l2_breakdown.snoops_remote += 1;
                ServePoint::SnoopRemote
            };
        }

        // Local LLC?
        let r3 = self.llc[my_socket].access_block(block, false);
        if r3.hit {
            self.stats.l2_breakdown.l3_hits += 1;
            return ServePoint::L3;
        }
        // access_block allocated the line in the local LLC; handle its
        // victim (dirty LLC victims go to DRAM — no further modeling).
        let _ = r3.evicted;

        // Remote LLC (clean cross-socket forward)?
        let remote_hit = (0..self.config.sockets)
            .filter(|&s| s != my_socket)
            .any(|s| self.llc[s].contains_block(block));
        if remote_hit {
            self.stats.l2_breakdown.snoops_remote += 1;
            return ServePoint::SnoopRemote;
        }

        // Clean copy in a remote core's private cache (sharers set but
        // not dirty): forwarded cross-socket as well.
        let others = entry.sharers & !(1u16 << core);
        if others != 0 {
            let any_local = (0..self.config.cores)
                .any(|c| others & (1 << c) != 0 && self.config.socket_of(c) == my_socket);
            if any_local {
                self.stats.l2_breakdown.snoops_local += 1;
                return ServePoint::SnoopLocal;
            }
            self.stats.l2_breakdown.snoops_remote += 1;
            return ServePoint::SnoopRemote;
        }

        self.stats.l3.misses += 1;
        self.stats.l2_breakdown.off_chip += 1;
        ServePoint::Memory
    }

    /// Folds a dirty L1 victim into its private L2. Normally the line
    /// is already there (inclusion) and the fill just merges
    /// dirtiness; when inclusion was broken earlier, the fold
    /// allocates and may displace an L2 victim of its own, which must
    /// run the full eviction path — dropping it leaves the victim's
    /// directory sharer bit stale and its dirty data lost.
    fn fold_l1_victim_into_l2(&mut self, core: usize, block: u64) {
        if let Some((l2_victim, l2_dirty)) = self.l2[core].fill_block(block, true) {
            self.evict_from_l2(core, l2_victim, l2_dirty);
        }
    }

    /// Handles an eviction from a private L2: back-invalidate L1
    /// (inclusion), update the directory, and write dirty data back to
    /// the local LLC.
    fn evict_from_l2(&mut self, core: usize, block: u64, dirty: bool) {
        let l1_dirty = self.l1[core].invalidate_block(block).unwrap_or(false);
        let dir_idx = block as usize % self.directory.len();
        self.directory[dir_idx].sharers &= !(1u16 << core);
        if self.directory[dir_idx].dirty_owner == core as u8 {
            self.directory[dir_idx].dirty_owner = NO_OWNER;
        }
        if dirty || l1_dirty {
            let socket = self.config.socket_of(core);
            self.llc_fill(socket, block, true);
        }
    }

    fn llc_fill(&mut self, socket: usize, block: u64, dirty: bool) {
        // Dirty LLC victims drain to DRAM; nothing further to model.
        let _ = self.llc[socket].fill_block(block, dirty);
    }

    fn note_present(&mut self, dir_idx: usize, core: usize, write: bool) {
        let e = &mut self.directory[dir_idx];
        e.sharers |= 1 << core;
        if write {
            e.dirty_owner = core as u8;
        }
    }

    fn charge(&mut self, served: ServePoint, pattern: AccessPattern) {
        let lat = &self.config.latency;
        let mlp = match pattern {
            AccessPattern::Streaming => lat.streaming_mlp,
            AccessPattern::Irregular => lat.irregular_mlp,
        }
        .max(1);
        let cycles = match served {
            ServePoint::L1 => lat.l1,
            ServePoint::L2 => lat.l2 / mlp,
            ServePoint::L3 => lat.l3 / mlp,
            ServePoint::SnoopLocal => lat.snoop_local / mlp,
            ServePoint::SnoopRemote => lat.snoop_remote / mlp,
            ServePoint::Memory => lat.memory / mlp,
        };
        self.stats.cycles += cycles.max(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::AccessPattern::Irregular;

    fn sim_with(n: usize) -> (MemorySim, ArrayId) {
        let mut layout = MemoryLayout::new();
        let a = layout.register("a", n, 8, Irregular);
        (MemorySim::new(SimConfig::default(), layout), a)
    }

    #[test]
    fn repeated_reads_hit_l1() {
        let (mut sim, a) = sim_with(64);
        for _ in 0..10 {
            sim.read(0, a, 5);
        }
        let s = sim.stats();
        assert_eq!(s.l1.accesses, 10);
        assert_eq!(s.l1.misses, 1);
        assert_eq!(s.l2.misses, 1);
        assert_eq!(s.l2_breakdown.off_chip, 1);
    }

    #[test]
    fn spatial_locality_within_block() {
        let (mut sim, a) = sim_with(64);
        for i in 0..8 {
            sim.read(0, a, i); // one 64B block of 8-byte elements
        }
        assert_eq!(sim.stats().l1.misses, 1);
    }

    #[test]
    fn capacity_misses_beyond_l1() {
        // Touch far more blocks than L1 holds, twice; second pass should
        // still hit in L2/L3 (footprint 16 KiB = L2 size).
        let (mut sim, a) = sim_with(2048);
        for round in 0..2 {
            for i in (0..2048).step_by(8) {
                sim.read(0, a, i);
            }
            if round == 0 {
                let s = sim.stats();
                assert_eq!(s.l1.misses, 256, "cold pass misses every block");
            }
        }
        let s = sim.stats();
        // Second pass: mostly L2/L3 hits, not off-chip.
        assert!(
            s.l2_breakdown.off_chip < 300,
            "off-chip {} should be ~256 cold misses",
            s.l2_breakdown.off_chip
        );
    }

    #[test]
    fn mpki_uses_instructions() {
        let (mut sim, a) = sim_with(64);
        sim.instr(1000);
        sim.read(0, a, 0);
        let [l1, _, l3] = sim.stats().mpki();
        assert_eq!(l1, 1.0);
        assert_eq!(l3, 1.0);
    }

    #[test]
    fn write_sharing_generates_snoops() {
        // Core 0 and core 1 (same socket) alternately write one block.
        let (mut sim, a) = sim_with(64);
        sim.write(0, a, 0);
        sim.write(1, a, 0);
        sim.write(0, a, 0);
        sim.write(1, a, 0);
        let b = sim.stats().l2_breakdown;
        assert!(b.snoops_local >= 3, "ping-pong should snoop: {b:?}");
        assert_eq!(b.snoops_remote, 0, "cores 0,1 share a socket");
    }

    #[test]
    fn cross_socket_write_sharing_snoops_remotely() {
        // Default config: 8 cores, 2 sockets -> core 0 socket 0,
        // core 4 socket 1.
        let (mut sim, a) = sim_with(64);
        sim.write(0, a, 0);
        sim.write(4, a, 0);
        let b = sim.stats().l2_breakdown;
        assert!(b.snoops_remote >= 1, "expected remote snoop: {b:?}");
    }

    #[test]
    fn read_of_remote_dirty_line_snoops() {
        let (mut sim, a) = sim_with(64);
        sim.write(0, a, 0); // core 0 holds dirty
        sim.read(1, a, 0); // same socket: local snoop
        let b = sim.stats().l2_breakdown;
        assert_eq!(b.snoops_local, 1, "{b:?}");
    }

    #[test]
    fn read_sharing_is_cheap_after_first_fetch() {
        let (mut sim, a) = sim_with(64);
        sim.read(0, a, 0); // off-chip
        sim.read(1, a, 0); // served on-chip (LLC or sibling)
        let b = sim.stats().l2_breakdown;
        assert_eq!(b.off_chip, 1, "{b:?}");
    }

    #[test]
    fn llc_hit_after_l2_eviction() {
        // Stream through 4x the L2 but well within the LLC, then
        // re-read the first block: should be served by LLC (L3 hit).
        let mut layout = MemoryLayout::new();
        let a = layout.register("a", 16384, 8, Irregular);
        let mut sim = MemorySim::new(SimConfig::default(), layout);
        for i in (0..8192).step_by(8) {
            sim.read(0, a, i);
        }
        let before = sim.stats().l2_breakdown.l3_hits;
        sim.read(0, a, 0);
        let after = sim.stats().l2_breakdown.l3_hits;
        assert_eq!(after - before, 1, "expected an L3 hit");
    }

    #[test]
    fn cycles_accumulate() {
        let (mut sim, a) = sim_with(64);
        sim.instr(100);
        let c0 = sim.stats().cycles;
        sim.read(0, a, 0);
        assert!(sim.stats().cycles > c0);
    }

    #[test]
    fn rfo_snoop_classification_follows_the_dirty_provider() {
        // Default config: 8 cores / 2 sockets. Requester core 0
        // (socket 0), dirty owner core 4 (socket 1), and core 1
        // (socket 0) carrying a stale sharer bit — the directory
        // state dropped L2 evictions used to leave behind. The dirty
        // owner supplies the data, so the ownership transfer is a
        // *remote* snoop; classifying it local because some sharer
        // bit is on the requester's socket skews the Fig. 9 split.
        let (mut sim, a) = sim_with(64);
        sim.write(4, a, 0);
        let block = sim.layout.addr(a, 0) / BLOCK_BYTES;
        let dir_idx = block as usize % sim.directory.len();
        sim.directory[dir_idx].sharers |= 1 << 1;
        let before = sim.stats.l2_breakdown;
        sim.write(0, a, 0);
        let after = sim.stats.l2_breakdown;
        assert_eq!(after.snoops_remote - before.snoops_remote, 1, "{after:?}");
        assert_eq!(
            after.snoops_local, before.snoops_local,
            "the provider is remote: {after:?}"
        );
    }

    #[test]
    fn rfo_clean_sharing_is_served_by_the_nearest_sharer() {
        let (mut sim, a) = sim_with(64);
        sim.write(4, a, 0); // core 4 (socket 1) owns the block dirty
        sim.read(1, a, 0); // remote snoop demotes it; {1, 4} share clean
        let before = sim.stats.l2_breakdown;
        sim.write(0, a, 0); // upgrade: the socket-0 sharer supplies
        let after = sim.stats.l2_breakdown;
        assert_eq!(after.snoops_local - before.snoops_local, 1, "{after:?}");
        assert_eq!(after.snoops_remote, before.snoops_remote, "{after:?}");
    }

    #[test]
    fn folded_l1_victims_run_the_full_l2_eviction_path() {
        // Tiny single-core hierarchy — L1 = 1 set x 2 ways, L2 =
        // 1 set x 4 ways — so every victim is deterministic.
        let mut layout = MemoryLayout::new();
        let a = layout.register("a", 1024, 8, Irregular);
        // Blocks are consecutive: 8 elements x 8 bytes per 64B block.
        let b: Vec<u64> = (0..6)
            .map(|i| layout.addr(a, i * 8) / BLOCK_BYTES)
            .collect();
        let cfg = SimConfig {
            cores: 1,
            sockets: 1,
            l1_bytes: 2 * 64,
            l1_ways: 2,
            l2_bytes: 4 * 64,
            l2_ways: 4,
            ..Default::default()
        };
        let mut sim = MemorySim::new(cfg, layout);
        let dlen = sim.directory.len();
        let dir = move |blk: u64| blk as usize % dlen;

        sim.write(0, a, 0); // b0 dirty in L1 and L2
        sim.read(0, a, 8); // b1 in L1 and L2; L1 now full {b0, b1}
                           // Break inclusion for b0 the way an invalidate once could:
                           // L1 keeps its dirty copy, L2 loses the line.
        sim.l2[0].invalidate_block(b[0]);
        // Fill L2's single set to capacity with tracked blocks.
        for (i, &blk) in b[2..5].iter().enumerate() {
            sim.l2[0].fill_block(blk, i == 0); // b2 dirty, b3/b4 clean
            sim.directory[dir(blk)].sharers |= 1;
        }
        sim.directory[dir(b[2])].dirty_owner = 0;
        sim.l2[0].access_block(b[1], false); // b1 most-recent => LRU is b2

        // Read b5: L1 evicts dirty b0, whose fold into the (full,
        // non-inclusive) L2 displaces b2 — an eviction that used to
        // be dropped on the floor.
        sim.read(0, a, 40);

        assert!(sim.l2[0].contains_block(b[0]), "fold must land in L2");
        assert!(!sim.l2[0].contains_block(b[2]), "b2 was the L2 victim");
        let e = sim.directory[dir(b[2])];
        assert_eq!(e.sharers, 0, "victim's sharer bit must clear");
        assert_eq!(e.dirty_owner, NO_OWNER, "victim's ownership must clear");
        assert!(
            sim.llc[0].contains_block(b[2]),
            "the dirty victim must write back to the LLC"
        );
    }

    #[test]
    #[should_panic(expected = "1..=16 cores")]
    fn rejects_too_many_cores() {
        let layout = MemoryLayout::new();
        let cfg = SimConfig {
            cores: 32,
            sockets: 2,
            ..Default::default()
        };
        let _ = MemorySim::new(cfg, layout);
    }
}
