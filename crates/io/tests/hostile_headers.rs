//! Hostile-header regression tests: declared metadata (Matrix Market
//! size lines, SNAP vertex IDs, `.lgr` header counts) is attacker-
//! controlled, and a few dozen bytes must never drive an allocation
//! proportional to the numbers they *name*. Every case here must
//! return `Err` quickly — if one of these OOMs or hangs, the loader
//! boundary has regressed.

use lgr_io::{lgr_from_bytes, parse_edge_list, parse_matrix_market};
use lgr_parallel::Pool;

fn pool() -> Pool {
    Pool::new(2)
}

#[test]
fn matrix_market_declared_dimension_bomb_is_rejected() {
    // ~60 bytes declaring a ~4-billion-row matrix: pre-fix this
    // passed every check and flowed into a ~32 GB `vec![0usize; n+1]`
    // CSR build downstream.
    let text = b"%%MatrixMarket matrix coordinate pattern general\n4000000000 1 1\n1 1\n";
    let err = parse_matrix_market(text, false, &pool()).unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("allocation bomb"),
        "expected the input-size bound to reject the declared dims, got: {msg}"
    );
}

#[test]
fn matrix_market_declared_nnz_bomb_is_rejected() {
    // Dimensions are modest but the declared entry count is absurd
    // for the file's size.
    let text = b"%%MatrixMarket matrix coordinate pattern general\n4 4 4000000000\n1 1\n";
    let err = parse_matrix_market(text, false, &pool()).unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("truncated or hostile"),
        "expected the entry-count bound to fire, got: {msg}"
    );
}

#[test]
fn matrix_market_honest_small_files_still_parse() {
    let text = b"%%MatrixMarket matrix coordinate pattern symmetric\n3 3 2\n1 2\n2 3\n";
    let el = parse_matrix_market(text, false, &pool()).unwrap();
    assert_eq!(el.num_vertices(), 3);
    // Symmetric: both off-diagonals mirrored.
    assert_eq!(el.num_edges(), 4);
}

#[test]
fn snap_vertex_id_bomb_is_rejected() {
    // A 13-byte edge list naming vertex 4000000000: `max ID + 1`
    // would size every per-vertex array in the workspace.
    let text = b"4000000000 1\n";
    let err = parse_edge_list(text, false, &pool()).unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("allocation bomb"),
        "expected the vertex-ID bound to reject the huge ID, got: {msg}"
    );
}

#[test]
fn snap_honest_ids_near_the_bound_still_parse() {
    // num_vertices == 101 with a 400-byte input is far under the
    // 8-vertices-per-byte policy bound.
    let mut text = String::new();
    for i in 0..100 {
        text.push_str(&format!("{i} 100\n"));
    }
    let el = parse_edge_list(text.as_bytes(), false, &pool()).unwrap();
    assert_eq!(el.num_vertices(), 101);
    assert_eq!(el.num_edges(), 100);
}

/// Builds a 40-byte `.lgr` header (magic + flags + reserved + vertex
/// count + edge count + checksum) over an empty payload.
fn lgr_header(v: u64, e: u64, flags: u32) -> Vec<u8> {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(b"LGRCSR01");
    bytes.extend_from_slice(&flags.to_le_bytes());
    bytes.extend_from_slice(&0u32.to_le_bytes());
    bytes.extend_from_slice(&v.to_le_bytes());
    bytes.extend_from_slice(&e.to_le_bytes());
    bytes.extend_from_slice(&0u64.to_le_bytes());
    bytes
}

#[test]
fn lgr_header_count_bombs_are_rejected_without_allocation() {
    // Huge-but-representable counts: the payload length check must
    // reject them before any `vec![0; n]` materializes.
    for (v, e) in [
        (4_000_000_000u64, 1u64),
        (1, 4_000_000_000),
        (u64::MAX / 16, u64::MAX / 16),
        (u64::MAX, u64::MAX),
    ] {
        for flags in [0u32, 1] {
            let bytes = lgr_header(v, e, flags);
            assert!(
                lgr_from_bytes(&bytes).is_err(),
                "header v={v} e={e} flags={flags} must be rejected"
            );
        }
    }
}
