//! Property tests for the `.lgr` binary format: every CSR — weighted
//! or not, empty, single-vertex, with self-loops and parallel edges —
//! survives `Csr -> .lgr bytes -> Csr` with structural equality, and
//! mutated bytes never produce a silently-wrong graph.

use proptest::collection::vec;
use proptest::prelude::*;

use lgr_graph::{Csr, EdgeList};
use lgr_io::{lgr_from_bytes, lgr_to_bytes};

/// Random graphs over 0..=40 vertices, 0..120 edges, optionally
/// weighted, including the empty and single-vertex corners.
fn graph_strategy() -> impl Strategy<Value = Csr> {
    (0usize..40, 0u32..2).prop_flat_map(|(extra_vertices, weighted)| {
        // 0, 1, or extra+1 vertices; edges only when there is a vertex.
        let n = extra_vertices;
        let edge_bound = if n == 0 { 1 } else { n as u32 };
        (
            Just(n),
            Just(weighted == 1),
            vec(
                (0u32..edge_bound.max(1), 0u32..edge_bound.max(1), 1u32..100),
                0..120,
            ),
        )
            .prop_map(|(n, weighted, triples)| {
                let mut el = EdgeList::new(n);
                if n > 0 {
                    for (u, v, w) in triples {
                        if weighted {
                            el.push_weighted(u % n as u32, v % n as u32, w);
                        } else {
                            el.push(u % n as u32, v % n as u32);
                        }
                    }
                }
                Csr::from_edge_list(&el)
            })
    })
}

proptest! {
    /// `Csr -> bytes -> Csr` is the identity under structural
    /// equality, for weighted and unweighted graphs alike.
    #[test]
    fn lgr_round_trip_is_exact(g in graph_strategy()) {
        let bytes = lgr_to_bytes(&g);
        let back = lgr_from_bytes(&bytes);
        prop_assert!(back.is_ok(), "round trip failed: {:?}", back.err());
        prop_assert_eq!(back.unwrap(), g);
    }

    /// Serialization is deterministic: equal graphs produce equal
    /// bytes (the property the byte-identical cache reuse relies on).
    #[test]
    fn serialization_is_deterministic(g in graph_strategy()) {
        prop_assert_eq!(lgr_to_bytes(&g), lgr_to_bytes(&g.clone()));
    }

    /// Truncating the byte stream anywhere yields an error, never a
    /// panic or a silently short graph.
    #[test]
    fn truncations_error_cleanly(g in graph_strategy(), cut in 0f64..1f64) {
        let bytes = lgr_to_bytes(&g);
        let keep = ((bytes.len() as f64) * cut) as usize;
        prop_assume!(keep < bytes.len());
        prop_assert!(lgr_from_bytes(&bytes[..keep]).is_err());
    }

    /// Flipping any single payload byte is caught by the checksum (or
    /// downstream validation) — corrupt caches read as misses, not as
    /// wrong graphs.
    #[test]
    fn single_byte_corruption_is_detected(g in graph_strategy(), pos in 0f64..1f64, bit in 0u32..8) {
        let mut bytes = lgr_to_bytes(&g);
        // Only corrupt the payload: header fields like num_vertices
        // are covered by the size cross-check instead.
        prop_assume!(bytes.len() > 40);
        let idx = 40 + (((bytes.len() - 40) as f64) * pos) as usize;
        prop_assume!(idx < bytes.len());
        bytes[idx] ^= 1 << bit;
        prop_assert!(lgr_from_bytes(&bytes).is_err());
    }

    /// Fully arbitrary bytes — including ones wearing a valid magic,
    /// so the header/length-field logic runs — either parse or error;
    /// they never panic. This is the dynamic half of the no-panic
    /// contract `cargo xtask audit` proves statically for this file.
    #[test]
    fn arbitrary_bytes_never_panic(words in vec(0u32..256, 0..200), magic in 0u32..2) {
        let mut raw: Vec<u8> = Vec::new();
        if magic == 1 {
            raw.extend_from_slice(b"LGRCSR01");
        }
        raw.extend(words.into_iter().map(|b| b as u8));
        let _ = lgr_from_bytes(&raw);
    }
}

#[test]
fn empty_and_single_vertex_graphs_round_trip() {
    for el in [EdgeList::new(0), EdgeList::new(1)] {
        let g = Csr::from_edge_list(&el);
        assert_eq!(lgr_from_bytes(&lgr_to_bytes(&g)).unwrap(), g);
    }
    let mut one = EdgeList::new(1);
    one.push_weighted(0, 0, 7); // single vertex, weighted self-loop
    let g = Csr::from_edge_list(&one);
    assert_eq!(lgr_from_bytes(&lgr_to_bytes(&g)).unwrap(), g);
}
