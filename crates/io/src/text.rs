//! Text graph loaders: SNAP/TSV edge lists and Matrix Market files.
//!
//! Both loaders parse on a worker [`Pool`]: the byte buffer is split
//! into newline-aligned chunks, each worker parses its chunk into a
//! private edge vector, and the chunks concatenate in file order — so
//! the resulting [`EdgeList`] is identical for every thread count
//! (the same determinism contract as the pooled CSR builders).
//!
//! Malformed input returns [`IoError::Format`] with the offending
//! line number; loaders never panic on bad bytes.

use std::ops::Range;
use std::path::Path;

use lgr_graph::{EdgeList, VertexId, Weight};
use lgr_parallel::{par_fill, Pool};

use crate::IoError;

/// One worker's share of parsed lines.
#[derive(Debug, Default)]
struct Chunk {
    edges: Vec<(VertexId, VertexId)>,
    weights: Vec<Weight>,
    max_id: VertexId,
    /// Total data+comment lines in the chunk (or lines consumed before
    /// the error), used to turn a chunk-local error line into a global
    /// one.
    lines: usize,
    /// Data entries (non-comment, non-empty lines) parsed.
    entries: usize,
    /// First malformed line, as `(chunk-local line index, message)`.
    error: Option<(usize, String)>,
}

/// Splits `text` into up to `parts` ranges whose boundaries fall just
/// after a newline, so no line straddles two chunks.
fn newline_chunks(text: &[u8], parts: usize) -> Vec<Range<usize>> {
    let n = text.len();
    let parts = parts.max(1).min(n.max(1));
    let mut bounds = Vec::with_capacity(parts + 1);
    bounds.push(0);
    for p in 1..parts {
        let target = (n * p / parts).max(*bounds.last().expect("non-empty"));
        let next = match text[target..].iter().position(|&b| b == b'\n') {
            Some(i) => target + i + 1,
            None => n,
        };
        if next > *bounds.last().expect("non-empty") {
            bounds.push(next);
        }
    }
    bounds.push(n);
    bounds.windows(2).map(|w| w[0]..w[1]).collect()
}

fn is_comment(line: &[u8]) -> bool {
    matches!(line.first(), Some(b'#') | Some(b'%'))
}

/// The shortest possible data entry (`"a b\n"` with one-digit IDs)
/// can yield two edges (a mirrored symmetric Matrix Market
/// off-diagonal), so an honest file never produces more than
/// `len / 2` edges. Pre-reserves are clamped to this estimate.
const MIN_BYTES_PER_EDGE: usize = 2;

/// Declared or implied vertex counts are bounded by a small multiple
/// of the input's own length: every vertex a text graph names costs
/// at least one byte somewhere, so a 60-byte file declaring 4 billion
/// rows is an allocation bomb, not a dataset. (Graphs with sparse,
/// astronomically-large ID spaces are rejected by policy — they would
/// need ID remapping before CSR construction anyway.)
const MAX_VERTICES_PER_INPUT_BYTE: usize = 8;

/// Rejects a vertex count that would let downstream `O(num_vertices)`
/// CSR/degree allocations dwarf the input that declared it.
fn check_vertex_bound(num_vertices: usize, input_len: usize, what: &str) -> Result<(), IoError> {
    let cap = input_len.saturating_mul(MAX_VERTICES_PER_INPUT_BYTE);
    if num_vertices > cap {
        return Err(IoError::Format(format!(
            "{what} implies {num_vertices} vertices but the input is only {input_len} bytes — \
             refusing an allocation bomb (limit: {MAX_VERTICES_PER_INPUT_BYTE} vertices per \
             input byte)"
        )));
    }
    Ok(())
}

fn parse_token<T: std::str::FromStr>(token: &[u8], what: &str) -> Result<T, String> {
    std::str::from_utf8(token)
        .ok()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("expected {what}, got `{}`", String::from_utf8_lossy(token)))
}

/// Parses one chunk with a per-line closure that may emit up to two
/// edges (Matrix Market symmetric entries mirror off-diagonals).
fn parse_chunk<F>(
    text: &[u8],
    range: Range<usize>,
    collect_weights: bool,
    line_to_edges: F,
) -> Chunk
where
    F: Fn(&[u8]) -> Result<[Option<(VertexId, VertexId, Weight)>; 2], String>,
{
    let slice = &text[range];
    let ends_with_newline = slice.ends_with(b"\n");
    let mut chunk = Chunk::default();
    for line in slice.split(|&b| b == b'\n') {
        let line = line.strip_suffix(b"\r").unwrap_or(line);
        let trimmed = line
            .iter()
            .position(|b| !b.is_ascii_whitespace())
            .map_or(&b""[..], |s| &line[s..]);
        chunk.lines += 1;
        if trimmed.is_empty() || is_comment(trimmed) {
            continue;
        }
        match line_to_edges(trimmed) {
            Ok(emitted) => {
                chunk.entries += 1;
                for (u, v, w) in emitted.into_iter().flatten() {
                    chunk.max_id = chunk.max_id.max(u).max(v);
                    chunk.edges.push((u, v));
                    if collect_weights {
                        chunk.weights.push(w);
                    }
                }
            }
            Err(msg) => {
                chunk.error = Some((chunk.lines, msg));
                return chunk;
            }
        }
    }
    // `split` yields one trailing empty piece for text ending in '\n'.
    // Uncount it so the next chunk's global line numbers stay exact.
    if ends_with_newline {
        chunk.lines -= 1;
    }
    chunk
}

/// Runs the chunked parallel parse and merges the chunks in file
/// order. `first_line` offsets reported line numbers (for bodies that
/// start after a header).
fn parse_lines<F>(
    text: &[u8],
    pool: &Pool,
    first_line: usize,
    weighted: bool,
    line_to_edges: F,
) -> Result<(EdgeList, usize), IoError>
where
    F: Fn(&[u8]) -> Result<[Option<(VertexId, VertexId, Weight)>; 2], String> + Sync,
{
    let ranges = newline_chunks(text, pool.threads());
    let mut chunks: Vec<Chunk> = Vec::new();
    chunks.resize_with(ranges.len(), Chunk::default);
    par_fill(pool, &mut chunks, |j| {
        parse_chunk(text, ranges[j].clone(), weighted, &line_to_edges)
    });
    // Surface the first error in file order, with its global line.
    let mut lines_before = first_line;
    for chunk in &chunks {
        if let Some((local, msg)) = &chunk.error {
            return Err(IoError::Format(format!(
                "line {}: {msg}",
                lines_before + local
            )));
        }
        lines_before += chunk.lines;
    }
    let total_edges: usize = chunks.iter().map(|c| c.edges.len()).sum();
    let entries: usize = chunks.iter().map(|c| c.entries).sum();
    let num_vertices = chunks
        .iter()
        .filter(|c| !c.edges.is_empty())
        .map(|c| c.max_id as usize + 1)
        .max()
        .unwrap_or(0);
    check_vertex_bound(num_vertices, text.len(), "the largest vertex ID")?;
    // Belt-and-braces: `total_edges` is an exact count today, but the
    // reserve stays bounded by a bytes-derived estimate so no refactor
    // (or hostile count) can ever make this line reserve more than a
    // small multiple of the input's own length.
    let reserve = total_edges.min(text.len() / MIN_BYTES_PER_EDGE + 1);
    let mut edges = Vec::with_capacity(reserve);
    let mut weights = if weighted {
        Some(Vec::with_capacity(reserve))
    } else {
        None
    };
    for chunk in chunks {
        edges.extend_from_slice(&chunk.edges);
        if let Some(ws) = weights.as_mut() {
            ws.extend_from_slice(&chunk.weights);
        }
    }
    Ok((EdgeList::from_parts(num_vertices, edges, weights), entries))
}

/// Parses a SNAP/TSV-style edge list: one `src dst` pair per line
/// (whitespace-separated), `#`/`%` comments and blank lines skipped.
/// Vertex IDs are the integers in the file; the vertex count is
/// `max ID + 1`.
///
/// With `weighted`, a third integer column is required and becomes the
/// edge weight; without it, any extra columns are ignored.
pub fn parse_edge_list(text: &[u8], weighted: bool, pool: &Pool) -> Result<EdgeList, IoError> {
    let (el, _) = parse_lines(text, pool, 0, weighted, |line| {
        let mut tokens = line
            .split(|b| b.is_ascii_whitespace())
            .filter(|t| !t.is_empty());
        let src: VertexId =
            parse_token(tokens.next().ok_or("missing source vertex")?, "a vertex ID")?;
        let dst: VertexId = parse_token(
            tokens
                .next()
                .ok_or_else(|| "missing destination vertex".to_owned())?,
            "a vertex ID",
        )?;
        let w: Weight = if weighted {
            parse_token(
                tokens
                    .next()
                    .ok_or_else(|| "missing weight column (spec says :weighted)".to_owned())?,
                "an integer weight",
            )?
        } else {
            1
        };
        Ok([Some((src, dst, w)), None])
    })?;
    Ok(el)
}

/// [`parse_edge_list`] over a file's bytes.
pub fn load_edge_list(
    path: impl AsRef<Path>,
    weighted: bool,
    pool: &Pool,
) -> Result<EdgeList, IoError> {
    let path = path.as_ref();
    let bytes = std::fs::read(path)?;
    parse_edge_list(&bytes, weighted, pool).map_err(|e| e.at_path(path))
}

/// Parses a Matrix Market coordinate file
/// (`%%MatrixMarket matrix coordinate <field> <symmetry>`).
///
/// Supported fields: `pattern`, `integer`, `real`; symmetries:
/// `general`, `symmetric` (symmetric mirrors every off-diagonal
/// entry). Entries are 1-indexed; the vertex count is
/// `max(rows, cols)`. With `weighted`, the value column becomes the
/// edge weight (rounded, must be a finite non-negative number), so the
/// field must not be `pattern`; without it, values are ignored.
pub fn parse_matrix_market(text: &[u8], weighted: bool, pool: &Pool) -> Result<EdgeList, IoError> {
    let mut lines = 0usize;
    let mut rest = text;
    let mut next_line = |what: &str| -> Result<&[u8], IoError> {
        loop {
            if rest.is_empty() {
                return Err(IoError::Format(format!(
                    "line {}: missing {what}",
                    lines + 1
                )));
            }
            let end = rest
                .iter()
                .position(|&b| b == b'\n')
                .map_or(rest.len(), |i| i + 1);
            let (line, tail) = rest.split_at(end);
            rest = tail;
            lines += 1;
            let line = line.strip_suffix(b"\n").unwrap_or(line);
            let line = line.strip_suffix(b"\r").unwrap_or(line);
            if lines == 1 {
                return Ok(line); // the %%MatrixMarket banner
            }
            if line.is_empty() || is_comment(line) {
                continue;
            }
            return Ok(line);
        }
    };

    let banner = next_line("%%MatrixMarket banner")?;
    let banner_str = String::from_utf8_lossy(banner);
    let fields: Vec<String> = banner_str
        .split_ascii_whitespace()
        .map(str::to_ascii_lowercase)
        .collect();
    if fields.len() < 5 || fields[0] != "%%matrixmarket" || fields[1] != "matrix" {
        return Err(IoError::Format(format!(
            "line 1: not a MatrixMarket banner: `{banner_str}`"
        )));
    }
    if fields[2] != "coordinate" {
        return Err(IoError::Format(format!(
            "line 1: only `coordinate` matrices are supported, got `{}`",
            fields[2]
        )));
    }
    let value_field = fields[3].clone();
    if !matches!(value_field.as_str(), "pattern" | "integer" | "real") {
        return Err(IoError::Format(format!(
            "line 1: unsupported field `{value_field}` (expected pattern, integer, or real)"
        )));
    }
    if weighted && value_field == "pattern" {
        return Err(IoError::Format(
            "weighted load requested but the matrix field is `pattern` (no values)".to_owned(),
        ));
    }
    let symmetric = match fields[4].as_str() {
        "general" => false,
        "symmetric" => true,
        other => {
            return Err(IoError::Format(format!(
                "line 1: unsupported symmetry `{other}` (expected general or symmetric)"
            )))
        }
    };

    let dims = next_line("size line `rows cols nnz`")?;
    let dims_line = lines;
    let parse_dim = |t: Option<&[u8]>| -> Result<usize, IoError> {
        t.and_then(|t| std::str::from_utf8(t).ok())
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                IoError::Format(format!(
                    "line {dims_line}: malformed size line `{}` (expected `rows cols nnz`)",
                    String::from_utf8_lossy(dims)
                ))
            })
    };
    let mut dtok = dims
        .split(|b| b.is_ascii_whitespace())
        .filter(|t| !t.is_empty());
    let rows = parse_dim(dtok.next())?;
    let cols = parse_dim(dtok.next())?;
    let nnz = parse_dim(dtok.next())?;
    let num_vertices = rows.max(cols);
    if num_vertices > VertexId::MAX as usize {
        return Err(IoError::Format(format!(
            "line {dims_line}: {num_vertices} vertices overflow 32-bit vertex IDs"
        )));
    }
    // Declared metadata is attacker-controlled: bound it against the
    // input's own size before it can drive any allocation. A header
    // declaring dimensions (or an entry count) far beyond what the
    // file could possibly contain is hostile, not sparse.
    check_vertex_bound(num_vertices, text.len(), "the declared size line")?;
    if nnz > text.len() / MIN_BYTES_PER_EDGE + 1 {
        return Err(IoError::Format(format!(
            "line {dims_line}: declared {nnz} entries but the input is only {} bytes — \
             truncated or hostile file",
            text.len()
        )));
    }

    let has_values = value_field != "pattern";
    let (mut el, entries) = parse_lines(rest, pool, lines, weighted, |line| {
        let mut tokens = line
            .split(|b| b.is_ascii_whitespace())
            .filter(|t| !t.is_empty());
        let i: usize = parse_token(tokens.next().ok_or("missing row index")?, "a row index")?;
        let j: usize = parse_token(
            tokens
                .next()
                .ok_or_else(|| "missing column index".to_owned())?,
            "a column index",
        )?;
        if i < 1 || i > rows || j < 1 || j > cols {
            return Err(format!(
                "entry ({i}, {j}) outside the declared {rows}x{cols} matrix"
            ));
        }
        let w: Weight = if weighted {
            let token = tokens
                .next()
                .ok_or_else(|| "missing value column".to_owned())?;
            let v: f64 = parse_token(token, "a numeric value")?;
            if !v.is_finite() || v < 0.0 || v > u32::MAX as f64 {
                return Err(format!(
                    "value `{}` is not a usable edge weight",
                    String::from_utf8_lossy(token)
                ));
            }
            v.round() as Weight
        } else {
            if has_values {
                tokens.next(); // ignore the value column
            }
            1
        };
        let (u, v) = ((i - 1) as VertexId, (j - 1) as VertexId);
        let mirror = if symmetric && u != v {
            Some((v, u, w))
        } else {
            None
        };
        Ok([Some((u, v, w)), mirror])
    })?;
    if entries != nnz {
        return Err(IoError::Format(format!(
            "expected {nnz} entries, found {entries} — truncated or padded file"
        )));
    }
    // A symmetric matrix can have fewer distinct IDs than declared
    // rows; honor the declared dimensions like real loaders do.
    if el.num_vertices() < num_vertices {
        let (_, edges, weights) = el.into_parts();
        el = EdgeList::from_parts(num_vertices, edges, weights);
    }
    Ok(el)
}

/// [`parse_matrix_market`] over a file's bytes.
pub fn load_matrix_market(
    path: impl AsRef<Path>,
    weighted: bool,
    pool: &Pool,
) -> Result<EdgeList, IoError> {
    let path = path.as_ref();
    let bytes = std::fs::read(path)?;
    parse_matrix_market(&bytes, weighted, pool).map_err(|e| e.at_path(path))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> Pool {
        Pool::new(3)
    }

    #[test]
    fn edge_list_parses_comments_blanks_and_extra_columns() {
        let text = b"# SNAP-style comment\n% mtx-style comment\n\n0 1\n1 2 ignored\n 2 0 \n";
        let el = parse_edge_list(text, false, &pool()).unwrap();
        assert_eq!(el.num_vertices(), 3);
        assert_eq!(el.edges(), &[(0, 1), (1, 2), (2, 0)]);
        assert!(!el.is_weighted());
    }

    #[test]
    fn edge_list_weighted_requires_third_column() {
        let ok = parse_edge_list(b"0 1 5\n1 0 2\n", true, &pool()).unwrap();
        assert_eq!(ok.weights().unwrap(), &[5, 2]);
        let err = parse_edge_list(b"0 1 5\n1 0\n", true, &pool()).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn edge_list_bad_tokens_carry_line_numbers() {
        let err = parse_edge_list(b"0 1\n1 2\nnope 3\n", false, &pool()).unwrap_err();
        assert!(err.to_string().contains("line 3"), "{err}");
        assert!(err.to_string().contains("nope"), "{err}");
    }

    #[test]
    fn edge_list_is_thread_count_independent() {
        let mut text = Vec::new();
        for i in 0u32..500 {
            text.extend_from_slice(format!("{} {}\n", i % 37, (i * 7) % 37).as_bytes());
        }
        let sequential = parse_edge_list(&text, false, &Pool::new(1)).unwrap();
        for threads in [2, 3, 8] {
            let pooled = parse_edge_list(&text, false, &Pool::new(threads)).unwrap();
            assert_eq!(pooled, sequential, "{threads} threads");
        }
    }

    #[test]
    fn empty_input_is_an_empty_graph() {
        let el = parse_edge_list(b"", false, &pool()).unwrap();
        assert_eq!(el.num_vertices(), 0);
        assert_eq!(el.num_edges(), 0);
    }

    #[test]
    fn matrix_market_general_and_symmetric() {
        let general =
            b"%%MatrixMarket matrix coordinate pattern general\n% comment\n3 3 2\n1 2\n3 1\n";
        let el = parse_matrix_market(general, false, &pool()).unwrap();
        assert_eq!(el.num_vertices(), 3);
        assert_eq!(el.edges(), &[(0, 1), (2, 0)]);

        let symmetric =
            b"%%MatrixMarket matrix coordinate integer symmetric\n3 3 3\n1 2 9\n2 2 4\n3 1 7\n";
        let el = parse_matrix_market(symmetric, true, &pool()).unwrap();
        // Off-diagonals mirrored, diagonal not.
        assert_eq!(el.num_edges(), 5);
        assert!(el.edges().contains(&(1, 0)) && el.edges().contains(&(0, 2)));
        assert_eq!(el.weights().unwrap().iter().sum::<u32>(), 9 + 9 + 4 + 7 + 7);
    }

    #[test]
    fn matrix_market_rejects_malformed_headers() {
        for (text, needle) in [
            (&b"3 3 1\n1 2\n"[..], "banner"),
            (
                &b"%%MatrixMarket matrix array real general\n3 3 1\n"[..],
                "coordinate",
            ),
            (
                &b"%%MatrixMarket matrix coordinate complex general\n3 3 1\n"[..],
                "complex",
            ),
            (
                &b"%%MatrixMarket matrix coordinate real hermitian\n3 3 1\n"[..],
                "hermitian",
            ),
            (
                &b"%%MatrixMarket matrix coordinate real general\nnot a size line\n"[..],
                "size",
            ),
            (
                &b"%%MatrixMarket matrix coordinate real general\n"[..],
                "size",
            ),
        ] {
            let err = parse_matrix_market(text, false, &pool()).unwrap_err();
            assert!(err.to_string().contains(needle), "{needle}: {err}");
        }
    }

    #[test]
    fn matrix_market_detects_truncation_and_range_errors() {
        let truncated = b"%%MatrixMarket matrix coordinate pattern general\n3 3 5\n1 2\n2 3\n";
        let err = parse_matrix_market(truncated, false, &pool()).unwrap_err();
        assert!(err.to_string().contains("expected 5 entries"), "{err}");

        let out_of_range = b"%%MatrixMarket matrix coordinate pattern general\n3 3 1\n4 1\n";
        let err = parse_matrix_market(out_of_range, false, &pool()).unwrap_err();
        assert!(err.to_string().contains("outside"), "{err}");

        let zero_indexed = b"%%MatrixMarket matrix coordinate pattern general\n3 3 1\n0 1\n";
        assert!(parse_matrix_market(zero_indexed, false, &pool()).is_err());
    }

    #[test]
    fn matrix_market_weighted_needs_values() {
        let pattern = b"%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 2\n";
        let err = parse_matrix_market(pattern, true, &pool()).unwrap_err();
        assert!(err.to_string().contains("pattern"), "{err}");

        let real = b"%%MatrixMarket matrix coordinate real general\n2 2 2\n1 2 1.5\n2 1 2.49\n";
        let el = parse_matrix_market(real, true, &pool()).unwrap();
        assert_eq!(el.weights().unwrap(), &[2, 2]);

        let negative = b"%%MatrixMarket matrix coordinate real general\n2 2 1\n1 2 -4.0\n";
        assert!(parse_matrix_market(negative, true, &pool()).is_err());
    }

    #[test]
    fn declared_dimensions_win_over_observed_ids() {
        let text = b"%%MatrixMarket matrix coordinate pattern general\n9 9 1\n1 2\n";
        let el = parse_matrix_market(text, false, &pool()).unwrap();
        assert_eq!(el.num_vertices(), 9);
    }
}
