//! The `.lgr` binary CSR format.
//!
//! An `.lgr` file is a [`Csr`] serialized exactly: the cumulative
//! offset arrays and neighbor arrays of **both** adjacency directions,
//! plus the per-edge weights when present. Reloading therefore skips
//! edge parsing, counting sort, and canonical re-sorting entirely —
//! the arrays are copied section-by-section into freshly allocated
//! (and hence aligned) buffers and validated once.
//!
//! # Layout (all integers little-endian)
//!
//! ```text
//! offset  size         field
//! 0       8            magic b"LGRCSR01" (format version is the
//!                      trailing two bytes)
//! 8       4            flags (bit 0: weighted; other bits reserved,
//!                      must be zero)
//! 12      4            reserved (zero)
//! 16      8            num_vertices (u64)
//! 24      8            num_edges (u64)
//! 32      8            FNV-1a-style checksum of the payload
//! 40      -            payload:
//!                        out index      (V + 1) x u64
//!                        out neighbors  E x u32
//!                        out weights    E x u32   (weighted only)
//!                        in index       (V + 1) x u64
//!                        in neighbors   E x u32
//!                        in weights     E x u32   (weighted only)
//! ```
//!
//! The payload length is fully determined by the header, so
//! truncation and trailing garbage are detected before the checksum
//! is even computed. A checksum or structural-validation failure
//! yields [`IoError::Format`]; loaders never panic on bad bytes.

use std::path::Path;

use lgr_graph::{Csr, VertexId, Weight};

use crate::IoError;

/// File magic; the trailing `01` is the format version.
pub const LGR_MAGIC: [u8; 8] = *b"LGRCSR01";

const FLAG_WEIGHTED: u32 = 1;
const HEADER_BYTES: usize = 40;

/// Little-endian `u64` from up to 8 bytes, zero-padded on the high
/// end. Callers pass exact 8-byte chunks; the pad makes this total so
/// the hostile-input path has no panic site at all.
fn le_u64(c: &[u8]) -> u64 {
    let mut w = [0u8; 8];
    for (slot, &b) in w.iter_mut().zip(c) {
        *slot = b;
    }
    u64::from_le_bytes(w)
}

/// Little-endian `u32` from up to 4 bytes, zero-padded (see [`le_u64`]).
fn le_u32(c: &[u8]) -> u32 {
    let mut w = [0u8; 4];
    for (slot, &b) in w.iter_mut().zip(c) {
        *slot = b;
    }
    u32::from_le_bytes(w)
}

/// Folds the payload into a 64-bit digest, FNV-1a over whole `u64`
/// words (with a byte-wise tail) so checksumming runs at memory
/// bandwidth rather than byte-at-a-time speed.
fn checksum64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        h ^= le_u64(c);
        h = h.wrapping_mul(PRIME);
    }
    for &b in chunks.remainder() {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Appends `vals` to `out` as little-endian `u32`s (bulk copy on
/// little-endian targets).
fn push_u32s(out: &mut Vec<u8>, vals: &[u32]) {
    if cfg!(target_endian = "little") {
        // SAFETY: u32 has no padding; reinterpreting the slice as raw
        // bytes is valid, and on a little-endian target the in-memory
        // byte order is exactly the serialized order.
        let bytes =
            unsafe { std::slice::from_raw_parts(vals.as_ptr() as *const u8, vals.len() * 4) };
        out.extend_from_slice(bytes);
    } else {
        for &v in vals {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
}

/// Appends `vals` to `out` as little-endian `u64`s.
fn push_u64s(out: &mut Vec<u8>, vals: &[usize]) {
    if cfg!(target_endian = "little") && std::mem::size_of::<usize>() == 8 {
        // SAFETY: as in `push_u32s`; usize is 8 bytes on this target.
        let bytes =
            unsafe { std::slice::from_raw_parts(vals.as_ptr() as *const u8, vals.len() * 8) };
        out.extend_from_slice(bytes);
    } else {
        for &v in vals {
            out.extend_from_slice(&(v as u64).to_le_bytes());
        }
    }
}

/// Copies `bytes` (length `4 * n`) into a fresh `Vec<u32>`.
fn read_u32s(bytes: &[u8]) -> Vec<u32> {
    debug_assert_eq!(bytes.len() % 4, 0);
    let n = bytes.len() / 4;
    let mut out = vec![0u32; n];
    if cfg!(target_endian = "little") {
        // SAFETY: the destination vec owns n * 4 writable bytes and
        // the ranges cannot overlap (freshly allocated).
        unsafe {
            std::ptr::copy_nonoverlapping(bytes.as_ptr(), out.as_mut_ptr() as *mut u8, n * 4);
        }
    } else {
        for (slot, c) in out.iter_mut().zip(bytes.chunks_exact(4)) {
            *slot = le_u32(c);
        }
    }
    out
}

/// Copies `bytes` (length `8 * n`) into a fresh `Vec<usize>`, erroring
/// if any value overflows the target's `usize`.
fn read_u64s(bytes: &[u8]) -> Result<Vec<usize>, IoError> {
    debug_assert_eq!(bytes.len() % 8, 0);
    let n = bytes.len() / 8;
    if cfg!(target_endian = "little") && std::mem::size_of::<usize>() == 8 {
        let mut out = vec![0usize; n];
        // SAFETY: as in `read_u32s`; usize is 8 bytes on this target.
        unsafe {
            std::ptr::copy_nonoverlapping(bytes.as_ptr(), out.as_mut_ptr() as *mut u8, n * 8);
        }
        Ok(out)
    } else {
        bytes
            .chunks_exact(8)
            .map(|c| {
                let v = le_u64(c);
                usize::try_from(v)
                    .map_err(|_| IoError::Format(format!("offset {v} overflows this platform")))
            })
            .collect()
    }
}

/// Serializes a graph into `.lgr` bytes. The inverse of
/// [`lgr_from_bytes`]: the deserialized graph is structurally equal
/// (`==`) to `csr`.
pub fn lgr_to_bytes(csr: &Csr) -> Vec<u8> {
    let out = csr.out_adjacency();
    let inn = csr.in_adjacency();
    let v = csr.num_vertices();
    let e = csr.num_edges();
    let weighted = out.weights.is_some();
    // Sized from the slices actually serialized, not from the vertex/
    // edge counters, so the capacity is bounded by materialized data
    // by construction (and the taint audit can see that it is).
    let mut payload_len =
        (out.index.len() + inn.index.len()) * 8 + (out.neighbors.len() + inn.neighbors.len()) * 4;
    if let Some(ws) = out.weights {
        payload_len += ws.len() * 4;
    }
    if let Some(ws) = inn.weights {
        payload_len += ws.len() * 4;
    }
    debug_assert_eq!(
        payload_len,
        2 * (v + 1) * 8 + 2 * e * 4 + if weighted { 2 * e * 4 } else { 0 }
    );
    let mut payload = Vec::with_capacity(payload_len);
    for side in [out, inn] {
        push_u64s(&mut payload, side.index);
        push_u32s(&mut payload, side.neighbors);
        if let Some(ws) = side.weights {
            push_u32s(&mut payload, ws);
        }
    }
    debug_assert_eq!(payload.len(), payload_len);
    let mut bytes = Vec::with_capacity(HEADER_BYTES + payload.len());
    bytes.extend_from_slice(&LGR_MAGIC);
    let flags = if weighted { FLAG_WEIGHTED } else { 0 };
    bytes.extend_from_slice(&flags.to_le_bytes());
    bytes.extend_from_slice(&0u32.to_le_bytes());
    bytes.extend_from_slice(&(v as u64).to_le_bytes());
    bytes.extend_from_slice(&(e as u64).to_le_bytes());
    bytes.extend_from_slice(&checksum64(&payload).to_le_bytes());
    bytes.extend_from_slice(&payload);
    bytes
}

/// A `u64` header field; a short slice (impossible after the length
/// check, but provable only locally) reads as zero.
fn header_u64(bytes: &[u8], offset: usize) -> u64 {
    le_u64(bytes.get(offset..offset + 8).unwrap_or_default())
}

/// Deserializes `.lgr` bytes into a graph.
///
/// # Errors
///
/// [`IoError::Format`] on a bad magic/version, unknown flags, a
/// payload whose length disagrees with the header (truncated or
/// oversized file), a checksum mismatch, or arrays that violate the
/// CSR invariants.
pub fn lgr_from_bytes(bytes: &[u8]) -> Result<Csr, IoError> {
    if bytes.len() < HEADER_BYTES {
        return Err(IoError::Format(format!(
            "truncated header: {} bytes, need {HEADER_BYTES}",
            bytes.len()
        )));
    }
    if !bytes.starts_with(&LGR_MAGIC) {
        return Err(IoError::Format(
            "not an .lgr file (bad magic or unsupported version)".to_owned(),
        ));
    }
    let flags = le_u32(bytes.get(8..12).unwrap_or_default());
    if flags & !FLAG_WEIGHTED != 0 {
        return Err(IoError::Format(format!("unknown flag bits {flags:#x}")));
    }
    let weighted = flags & FLAG_WEIGHTED != 0;
    let v64 = header_u64(bytes, 16);
    let e64 = header_u64(bytes, 24);
    let stored_checksum = header_u64(bytes, 32);
    let (v, e) = match (usize::try_from(v64), usize::try_from(e64)) {
        (Ok(v), Ok(e)) => (v, e),
        _ => {
            return Err(IoError::Format(format!(
                "graph too large for this platform ({v64} vertices, {e64} edges)"
            )))
        }
    };
    // Checked arithmetic: a crafted header with counts near usize::MAX
    // must surface as a format error, not an overflow panic (the
    // no-panic contract DatasetCache's corrupt-entry-as-miss relies
    // on).
    let sizes = (|| {
        let index_bytes = v.checked_add(1)?.checked_mul(8)?;
        let edge_bytes = e.checked_mul(4)?;
        let side_bytes = index_bytes
            .checked_add(edge_bytes)?
            .checked_add(if weighted { edge_bytes } else { 0 })?;
        Some((index_bytes, edge_bytes, side_bytes.checked_mul(2)?))
    })();
    let Some((index_bytes, edge_bytes, expected)) = sizes else {
        return Err(IoError::Format(format!(
            "header promises an impossible size ({v} vertices, {e} edges)"
        )));
    };
    let payload = bytes.get(HEADER_BYTES..).unwrap_or_default();
    if payload.len() != expected {
        return Err(IoError::Format(format!(
            "payload is {} bytes but the header promises {expected} \
             ({v} vertices, {e} edges, weighted={weighted}) — truncated or corrupt",
            payload.len()
        )));
    }
    if checksum64(payload) != stored_checksum {
        return Err(IoError::Format("checksum mismatch".to_owned()));
    }
    // One adjacency direction's owned arrays, in
    // `Csr::from_adjacency_parts` order.
    type SideParts = (Vec<usize>, Vec<VertexId>, Option<Vec<Weight>>);
    let mut off = 0usize;
    let mut section = |len: usize| -> Result<&[u8], IoError> {
        let s = payload
            .get(off..off + len)
            .ok_or_else(|| IoError::Format("payload section out of bounds".to_owned()))?;
        off += len;
        Ok(s)
    };
    let mut side = || -> Result<SideParts, IoError> {
        let index = read_u64s(section(index_bytes)?)?;
        let neighbors = read_u32s(section(edge_bytes)?);
        let weights = if weighted {
            Some(read_u32s(section(edge_bytes)?))
        } else {
            None
        };
        Ok((index, neighbors, weights))
    };
    let out = side()?;
    let inn = side()?;
    Csr::from_adjacency_parts(v, out, inn).map_err(|e| IoError::Format(e.to_string()))
}

/// Writes `csr` to `path` in `.lgr` format.
pub fn save_lgr(path: impl AsRef<Path>, csr: &Csr) -> Result<(), IoError> {
    std::fs::write(path.as_ref(), lgr_to_bytes(csr))?;
    Ok(())
}

/// Loads a graph from an `.lgr` file: one bulk read of the whole file,
/// then section copies into aligned buffers.
pub fn load_lgr(path: impl AsRef<Path>) -> Result<Csr, IoError> {
    let path = path.as_ref();
    let bytes = std::fs::read(path)?;
    lgr_from_bytes(&bytes).map_err(|e| e.at_path(path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lgr_graph::EdgeList;

    fn weighted_graph() -> Csr {
        let mut el = EdgeList::new(5);
        el.push_weighted(0, 1, 3);
        el.push_weighted(0, 1, 3); // parallel edge
        el.push_weighted(1, 1, 9); // self-loop
        el.push_weighted(4, 0, 7);
        Csr::from_edge_list(&el)
    }

    #[test]
    fn bytes_round_trip_exactly() {
        for g in [
            weighted_graph(),
            Csr::from_edge_list(&EdgeList::new(0)),
            Csr::from_edge_list(&EdgeList::new(1)),
        ] {
            let bytes = lgr_to_bytes(&g);
            let back = lgr_from_bytes(&bytes).unwrap();
            assert_eq!(back, g);
        }
    }

    #[test]
    fn files_round_trip() {
        let g = weighted_graph();
        let path = std::env::temp_dir().join(format!("lgr-io-test-{}.lgr", std::process::id()));
        save_lgr(&path, &g).unwrap();
        let back = load_lgr(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back, g);
    }

    #[test]
    fn corrupt_bytes_are_errors_not_panics() {
        let good = lgr_to_bytes(&weighted_graph());
        // Too short for a header.
        assert!(matches!(
            lgr_from_bytes(&good[..10]),
            Err(IoError::Format(_))
        ));
        // Bad magic.
        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(lgr_from_bytes(&bad).is_err());
        // Unknown flag bits.
        let mut bad = good.clone();
        bad[8] |= 0x80;
        assert!(lgr_from_bytes(&bad).is_err());
        // Truncated payload.
        assert!(lgr_from_bytes(&good[..good.len() - 3]).is_err());
        // Trailing garbage.
        let mut bad = good.clone();
        bad.extend_from_slice(&[0, 1, 2]);
        assert!(lgr_from_bytes(&bad).is_err());
        // Flipped payload byte: checksum catches it.
        let mut bad = good.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0xff;
        let err = lgr_from_bytes(&bad).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn absurd_header_counts_error_instead_of_overflowing() {
        // num_vertices near usize::MAX passes the platform check but
        // must fail size arithmetic cleanly, not panic.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&LGR_MAGIC);
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&(u64::MAX / 2).to_le_bytes()); // vertices
        bytes.extend_from_slice(&(u64::MAX / 2).to_le_bytes()); // edges
        bytes.extend_from_slice(&0u64.to_le_bytes()); // checksum
        let err = lgr_from_bytes(&bytes).unwrap_err();
        assert!(
            err.to_string().contains("impossible size") || err.to_string().contains("too large"),
            "{err}"
        );
    }

    #[test]
    fn valid_checksum_but_invalid_structure_is_an_error() {
        // Hand-build a file whose neighbor ID is out of range; the
        // checksum is honest, so structural validation must catch it.
        let g = weighted_graph();
        let out = g.out_adjacency();
        let inn = g.in_adjacency();
        let mut bad_neighbors = out.neighbors.to_vec();
        bad_neighbors[0] = 1000;
        let forged = {
            let mut payload = Vec::new();
            push_u64s(&mut payload, out.index);
            push_u32s(&mut payload, &bad_neighbors);
            push_u32s(&mut payload, out.weights.unwrap());
            push_u64s(&mut payload, inn.index);
            push_u32s(&mut payload, inn.neighbors);
            push_u32s(&mut payload, inn.weights.unwrap());
            let mut bytes = Vec::new();
            bytes.extend_from_slice(&LGR_MAGIC);
            bytes.extend_from_slice(&FLAG_WEIGHTED.to_le_bytes());
            bytes.extend_from_slice(&0u32.to_le_bytes());
            bytes.extend_from_slice(&(g.num_vertices() as u64).to_le_bytes());
            bytes.extend_from_slice(&(g.num_edges() as u64).to_le_bytes());
            bytes.extend_from_slice(&checksum64(&payload).to_le_bytes());
            bytes.extend_from_slice(&payload);
            bytes
        };
        let err = lgr_from_bytes(&forged).unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = load_lgr("/nonexistent/definitely/missing.lgr").unwrap_err();
        assert!(matches!(err, IoError::Io(_)));
    }
}
