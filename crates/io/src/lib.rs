//! On-disk graph formats and the dataset cache.
//!
//! Real-dataset evaluation needs graphs that come from files, not
//! generators. This crate provides the three ways a graph enters or
//! leaves the system on disk:
//!
//! * [`lgr`] — the `.lgr` binary CSR format: versioned, checksummed,
//!   and exact. Saving serializes a [`Csr`](lgr_graph::Csr)'s raw
//!   arrays (offsets, both adjacency directions, optional weights);
//!   loading is one bulk read plus section copies into aligned
//!   buffers — no per-edge parsing and no counting sort, so a reload
//!   is bounded by disk bandwidth rather than graph-build time. The
//!   loaded graph is structurally equal (`==`) to the saved one.
//! * [`text`] — loaders for SNAP/TSV edge lists and Matrix Market
//!   coordinate files, parsed in parallel on a
//!   [`Pool`](lgr_parallel::Pool) (each worker scans a
//!   newline-aligned chunk; chunks merge in file order, so the result
//!   is deterministic for every thread count). Malformed input
//!   returns [`IoError`], never panics.
//! * [`cache`] — [`DatasetCache`], a directory of `.lgr` files keyed
//!   by dataset-spec string + scale, giving "generate once, reload
//!   forever" semantics to any dataset source.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod lgr;
pub mod text;

pub use cache::DatasetCache;
pub use lgr::{lgr_from_bytes, lgr_to_bytes, load_lgr, save_lgr};
pub use text::{load_edge_list, load_matrix_market, parse_edge_list, parse_matrix_market};

/// FNV-1a over `bytes`: the stable 64-bit hash used for cache file
/// names and other content-addressed keying across the workspace
/// (one definition, so keys never silently diverge between layers).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Why a load or save failed.
#[derive(Debug)]
pub enum IoError {
    /// The operating system refused the read or write.
    Io(std::io::Error),
    /// The bytes do not describe a valid graph; the message names the
    /// file (when known) and the offending location.
    Format(String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "{e}"),
            IoError::Format(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IoError::Io(e) => Some(e),
            IoError::Format(_) => None,
        }
    }
}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

impl IoError {
    /// Prefixes a format error with the path it came from.
    fn at_path(self, path: &std::path::Path) -> IoError {
        match self {
            IoError::Format(msg) => IoError::Format(format!("{}: {msg}", path.display())),
            other => other,
        }
    }
}
