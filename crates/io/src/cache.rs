//! The on-disk dataset cache: generate (or load) once, reload as a
//! binary CSR afterwards.

use std::path::{Path, PathBuf};

use lgr_graph::Csr;

use crate::lgr::{load_lgr, save_lgr};
use crate::{fnv1a64, IoError};

/// A directory of `.lgr` files keyed by an opaque cache-key string
/// (the engine uses `dataset spec + scale`).
///
/// File names are `<slug>-<hash>.lgr`: a human-readable slug of the
/// key plus a 64-bit hash of the full key, so distinct keys never
/// collide in practice while the directory stays browsable.
///
/// Lookups treat any unreadable or corrupt entry as a miss — the
/// caller rebuilds and overwrites — and stores write through a
/// temporary file renamed into place, so a crashed writer never
/// leaves a half-written entry behind.
#[derive(Debug, Clone)]
pub struct DatasetCache {
    dir: PathBuf,
}

fn slug(key: &str) -> String {
    let mut out = String::new();
    for c in key.chars() {
        let mapped = if c.is_ascii_alphanumeric() {
            c.to_ascii_lowercase()
        } else {
            '-'
        };
        if mapped == '-' && out.ends_with('-') {
            continue;
        }
        out.push(mapped);
        if out.len() >= 48 {
            break;
        }
    }
    let trimmed = out.trim_matches('-');
    if trimmed.is_empty() {
        "dataset".to_owned()
    } else {
        trimmed.to_owned()
    }
}

impl DatasetCache {
    /// A cache rooted at `dir`. The directory is created lazily on the
    /// first [`DatasetCache::store`].
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DatasetCache { dir: dir.into() }
    }

    /// The cache's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The file a key maps to (whether or not it exists yet).
    pub fn path(&self, key: &str) -> PathBuf {
        self.dir.join(format!(
            "{}-{:016x}.lgr",
            slug(key),
            fnv1a64(key.as_bytes())
        ))
    }

    /// Loads the cached graph for `key`, treating a missing,
    /// unreadable, or corrupt entry as a miss.
    pub fn load(&self, key: &str) -> Option<Csr> {
        load_lgr(self.path(key)).ok()
    }

    /// Stores `csr` under `key`, creating the cache directory if
    /// needed. Returns the entry's path.
    pub fn store(&self, key: &str, csr: &Csr) -> Result<PathBuf, IoError> {
        use std::sync::atomic::{AtomicU64, Ordering};
        // Unique per process *and* per store call: concurrent threads
        // of a shared Session may store different keys at once, and a
        // pid-only suffix would let their temp files collide.
        static STORE_SEQ: AtomicU64 = AtomicU64::new(0);
        std::fs::create_dir_all(&self.dir)?;
        let path = self.path(key);
        let tmp = path.with_extension(format!(
            "tmp{}-{}",
            std::process::id(),
            STORE_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let result =
            save_lgr(&tmp, csr).and_then(|()| std::fs::rename(&tmp, &path).map_err(IoError::from));
        if result.is_err() {
            // A failed write (disk full, permissions) or rename must
            // not strand the temporary file in the cache directory —
            // every retry would leave another one behind.
            let _ = std::fs::remove_file(&tmp);
        }
        result.map(|()| path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lgr_graph::EdgeList;

    fn tmp_cache(tag: &str) -> DatasetCache {
        DatasetCache::new(
            std::env::temp_dir().join(format!("lgr-cache-test-{tag}-{}", std::process::id())),
        )
    }

    fn graph() -> Csr {
        let mut el = EdgeList::new(3);
        el.push_weighted(0, 1, 2);
        el.push_weighted(1, 2, 3);
        Csr::from_edge_list(&el)
    }

    #[test]
    fn store_then_load_round_trips() {
        let cache = tmp_cache("roundtrip");
        let g = graph();
        assert!(cache.load("kr|sd=2048|seed=42").is_none());
        let path = cache.store("kr|sd=2048|seed=42", &g).unwrap();
        assert!(path.exists());
        assert_eq!(cache.load("kr|sd=2048|seed=42").unwrap(), g);
        // A different key is a different entry.
        assert!(cache.load("kr|sd=4096|seed=42").is_none());
        std::fs::remove_dir_all(cache.dir()).ok();
    }

    #[test]
    fn corrupt_entries_read_as_misses() {
        let cache = tmp_cache("corrupt");
        let key = "pl|sd=2048|seed=42";
        cache.store(key, &graph()).unwrap();
        std::fs::write(cache.path(key), b"definitely not an lgr file").unwrap();
        assert!(cache.load(key).is_none());
        std::fs::remove_dir_all(cache.dir()).ok();
    }

    #[test]
    fn a_failed_store_leaves_no_stray_temp_files() {
        let cache = tmp_cache("failed-store");
        let key = "kr|sd=2048|seed=42";
        // Occupy the entry's final path with a non-empty directory:
        // `save_lgr` succeeds into the temp file, but the rename into
        // place fails — the shared cleanup path (also taken when
        // `save_lgr` itself errors) must then remove the temp file.
        std::fs::create_dir_all(cache.path(key).join("occupied")).unwrap();
        assert!(cache.store(key, &graph()).is_err());
        let strays: Vec<_> = std::fs::read_dir(cache.dir())
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|name| name.contains(".tmp"))
            .collect();
        assert!(strays.is_empty(), "stray temp files: {strays:?}");
        // And repeated failures never accumulate entries either.
        for _ in 0..5 {
            assert!(cache.store(key, &graph()).is_err());
        }
        assert_eq!(std::fs::read_dir(cache.dir()).unwrap().count(), 1);
        std::fs::remove_dir_all(cache.dir()).ok();
    }

    #[test]
    fn keys_slug_into_readable_filenames() {
        let cache = DatasetCache::new("/tmp/x");
        let p = cache.path("file:/data/web graph.el:weighted|sd=131072|seed=42");
        let name = p.file_name().unwrap().to_string_lossy().into_owned();
        assert!(
            name.starts_with("file-data-web-graph-el-weighted"),
            "{name}"
        );
        assert!(name.ends_with(".lgr"), "{name}");
        // Same slug, different key → different hash suffix.
        let q = cache.path("file:/data/web graph.el:weighted|sd=131072|seed=43");
        assert_ne!(p, q);
    }
}
